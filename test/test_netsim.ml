(* Unit and property tests for Mifo_netsim: event queue, max-min
   allocator, TCP state machine, flow-level simulator and packet-level
   simulator. *)

module Eventq = Mifo_netsim.Eventq
module Maxmin = Mifo_netsim.Maxmin
module Tcp = Mifo_netsim.Tcp
module Flowsim = Mifo_netsim.Flowsim
module Packetsim = Mifo_netsim.Packetsim
module Routing_table = Mifo_bgp.Routing_table
module Prefix = Mifo_bgp.Prefix
module Fib = Mifo_core.Fib
module Engine = Mifo_core.Engine
module Deployment = Mifo_core.Deployment
module Generator = Mifo_topology.Generator
module As_graph = Mifo_topology.As_graph
module Relationship = Mifo_topology.Relationship

let check_float = Alcotest.(check (float 1e-6))

(* ---------- Eventq ---------- *)

let test_eventq_order () =
  let q = Eventq.create () in
  Eventq.schedule q ~time:3. "c";
  Eventq.schedule q ~time:1. "a";
  Eventq.schedule q ~time:2. "b";
  Alcotest.(check (option (float 1e-9))) "peek" (Some 1.) (Eventq.peek_time q);
  let order = List.init 3 (fun _ -> snd (Option.get (Eventq.next q))) in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] order

let test_eventq_stable () =
  let q = Eventq.create () in
  Eventq.schedule q ~time:1. "first";
  Eventq.schedule q ~time:1. "second";
  Alcotest.(check string) "fifo on ties" "first" (snd (Option.get (Eventq.next q)));
  Alcotest.(check string) "fifo on ties 2" "second" (snd (Option.get (Eventq.next q)))

let test_eventq_rejects_bad_time () =
  let q = Eventq.create () in
  Alcotest.(check bool) "negative" true
    (match Eventq.schedule q ~time:(-1.) () with
     | exception Invalid_argument _ -> true
     | _ -> false);
  Alcotest.(check bool) "nan" true
    (match Eventq.schedule q ~time:Float.nan () with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* Property: equal timestamps pop in insertion order whatever the
   schedule interleaving - the simulators rely on this for
   determinism. *)
let prop_eventq_fifo_ties =
  QCheck2.Test.make ~name:"eventq: FIFO among equal timestamps" ~count:200
    QCheck2.Gen.(list_size (int_range 1 50) (int_bound 3))
    (fun times ->
      let q = Eventq.create () in
      List.iteri (fun i t -> Eventq.schedule q ~time:(float_of_int t) (t, i)) times;
      let rec drain acc =
        match Eventq.next q with
        | None -> List.rev acc
        | Some (_, payload) -> drain (payload :: acc)
      in
      let rec ordered = function
        | (t1, i1) :: ((t2, i2) :: _ as rest) ->
          (t1 < t2 || (t1 = t2 && i1 < i2)) && ordered rest
        | _ -> true
      in
      ordered (drain []))

(* Regression: [clear] used to empty the queue but leave the sequence
   counter running, so a reused queue tie-broke differently from a
   fresh one — a determinism leak across resets. *)
let test_eventq_clear_resets_seq () =
  List.iter
    (fun engine ->
      let q = Eventq.create ~engine () in
      Eventq.schedule q ~time:1. "x";
      Eventq.schedule q ~time:2. "y";
      ignore (Eventq.pop_before q ~until:3.);
      Eventq.clear q;
      Alcotest.(check bool) "empty" true (Eventq.is_empty q);
      check_float "last_time reset" 0. (Eventq.last_time q);
      Eventq.schedule q ~time:4. "z";
      (match Eventq.peek_key q with
       | Some (t, s) ->
         check_float "time" 4. t;
         Alcotest.(check int) "seq restarts at 0" 0 s
       | None -> Alcotest.fail "empty after schedule");
      Alcotest.(check int) "peak length reset" 1 (Eventq.peak_length q))
    [ Eventq.Heap; Eventq.Wheel ]

let test_eventq_pop_before_time_cell () =
  List.iter
    (fun engine ->
      let q = Eventq.create ~engine () in
      let cell = Eventq.time_cell q in
      Eventq.schedule q ~time:5e-6 "a";
      Eventq.schedule q ~time:9e-6 "b";
      Alcotest.(check (option string)) "beyond horizon" None
        (Eventq.pop_before q ~until:1e-6);
      Alcotest.(check (option string)) "within horizon" (Some "a")
        (Eventq.pop_before q ~until:6e-6);
      check_float "last_time" 5e-6 (Eventq.last_time q);
      Alcotest.(check (option string)) "rest" (Some "b")
        (Eventq.pop_before q ~until:Float.infinity);
      check_float "shared cell tracks pops" 9e-6 cell.(0))
    [ Eventq.Heap; Eventq.Wheel ]

(* The tentpole's safety net at the API level: any interleaving of
   schedules and pops — duplicate times, sub-tick spacings, far-future
   outliers including +inf — pops bit-identically under both engines. *)
let eventq_time_gen =
  QCheck2.Gen.(
    frequency
      [
        (6, map (fun k -> float_of_int k *. 1e-7) (int_bound 300));
        (1, map (fun k -> 1000. +. float_of_int k) (int_bound 3));
        (1, return Float.infinity);
      ])

let prop_eventq_engines_agree =
  QCheck2.Test.make ~name:"eventq: heap and wheel pop identical sequences" ~count:300
    QCheck2.Gen.(list_size (int_range 1 250) (pair bool eventq_time_gen))
    (fun ops ->
      let qh = Eventq.create ~engine:Eventq.Heap () in
      let qw = Eventq.create ~engine:Eventq.Wheel () in
      let i = ref 0 and agree = ref true in
      let pop_both () =
        match (Eventq.next qh, Eventq.next qw) with
        | None, None -> false
        | Some (th, ph), Some (tw, pw) ->
          if not (Int64.bits_of_float th = Int64.bits_of_float tw && ph = pw) then
            agree := false;
          true
        | Some _, None | None, Some _ ->
          agree := false;
          false
      in
      List.iter
        (fun (pop, t) ->
          if pop then ignore (pop_both ())
          else begin
            Eventq.schedule qh ~time:t !i;
            Eventq.schedule qw ~time:t !i;
            incr i
          end)
        ops;
      while pop_both () do () done;
      !agree && Eventq.is_empty qh && Eventq.is_empty qw)

(* ---------- Maxmin ---------- *)

let test_maxmin_two_flows_one_link () =
  let rates = Maxmin.allocate ~capacities:[| 10. |] ~flow_links:[| [| 0 |]; [| 0 |] |] in
  check_float "fair split" 5. rates.(0);
  check_float "fair split" 5. rates.(1)

let test_maxmin_classic () =
  (* classic example: links A(cap 10) and B(cap 4); flow1 on A+B, flow2 on
     B, flow3 on A.  Max-min: flow1 = flow2 = 2 (B bottleneck), flow3 = 8. *)
  let rates =
    Maxmin.allocate ~capacities:[| 10.; 4. |]
      ~flow_links:[| [| 0; 1 |]; [| 1 |]; [| 0 |] |]
  in
  check_float "flow1" 2. rates.(0);
  check_float "flow2" 2. rates.(1);
  check_float "flow3" 8. rates.(2)

let test_maxmin_empty_path () =
  (* A flow crossing no link is unconstrained: infinity, explicitly —
     not the largest capacity of links it never touches. *)
  let rates = Maxmin.allocate ~capacities:[| 7. |] ~flow_links:[| [||] |] in
  Alcotest.(check bool) "unconstrained is infinite" true (rates.(0) = Float.infinity);
  (* and it must not rob constrained flows of anything *)
  let rates =
    Maxmin.allocate ~capacities:[| 7. |] ~flow_links:[| [||]; [| 0 |]; [| 0 |] |]
  in
  Alcotest.(check bool) "still infinite beside others" true
    (rates.(0) = Float.infinity);
  check_float "others unaffected" 3.5 rates.(1);
  check_float "others unaffected" 3.5 rates.(2)

let test_maxmin_all_empty_flows () =
  let rates = Maxmin.allocate ~capacities:[| 5.; 2. |] ~flow_links:[| [||]; [||] |] in
  Array.iter
    (fun r -> Alcotest.(check bool) "all unconstrained" true (r = Float.infinity))
    rates;
  (* no links at all: same answer, no division by a fold over nothing *)
  let rates = Maxmin.allocate ~capacities:[||] ~flow_links:[| [||] |] in
  Alcotest.(check bool) "no links" true (rates.(0) = Float.infinity);
  let alloc =
    Maxmin.link_allocation ~capacities:[| 5.; 2. |]
      ~flow_links:[| [||]; [||] |]
      ~rates:(Maxmin.allocate ~capacities:[| 5.; 2. |] ~flow_links:[| [||]; [||] |])
  in
  check_float "nothing allocated" 0. alloc.(0);
  check_float "nothing allocated" 0. alloc.(1)

let test_maxmin_duplicate_links_counted_once () =
  let rates = Maxmin.allocate ~capacities:[| 6. |] ~flow_links:[| [| 0; 0 |]; [| 0 |] |] in
  check_float "dedup" 3. rates.(0);
  check_float "dedup" 3. rates.(1)

let test_maxmin_rejects_bad_input () =
  Alcotest.(check bool) "bad link id" true
    (match Maxmin.allocate ~capacities:[| 1. |] ~flow_links:[| [| 3 |] |] with
     | exception Invalid_argument _ -> true
     | _ -> false);
  Alcotest.(check bool) "negative capacity" true
    (match Maxmin.allocate ~capacities:[| -1. |] ~flow_links:[||] with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* Properties: feasibility and the bottleneck characterization of max-min
   fairness: every flow crosses a saturated link on which it has the
   maximal rate. *)
let maxmin_instance_gen =
  QCheck2.Gen.(
    let* nlinks = int_range 1 12 in
    let* nflows = int_range 1 20 in
    let* caps = array_size (return nlinks) (float_range 1. 100.) in
    let* flows =
      array_size (return nflows)
        (list_size (int_range 1 5) (int_bound (nlinks - 1)))
    in
    return (caps, Array.map Array.of_list flows))

let prop_maxmin_feasible =
  QCheck2.Test.make ~name:"max-min allocation never exceeds capacity" ~count:300
    maxmin_instance_gen
    (fun (caps, flows) ->
      let rates = Maxmin.allocate ~capacities:caps ~flow_links:flows in
      (* link_allocation requires duplicate-free link sets *)
      let deduped = Array.map Maxmin.dedup_links flows in
      let alloc = Maxmin.link_allocation ~capacities:caps ~flow_links:deduped ~rates in
      Array.for_all2 (fun a c -> a <= c +. 1e-6) alloc caps)

let prop_maxmin_bottleneck =
  QCheck2.Test.make ~name:"every flow has a saturated bottleneck where it is maximal"
    ~count:300 maxmin_instance_gen
    (fun (caps, flows) ->
      let rates = Maxmin.allocate ~capacities:caps ~flow_links:flows in
      let deduped = Array.map Maxmin.dedup_links flows in
      let alloc = Maxmin.link_allocation ~capacities:caps ~flow_links:deduped ~rates in
      let max_rate_on = Array.make (Array.length caps) 0. in
      Array.iteri
        (fun f links ->
          Array.iter (fun l -> max_rate_on.(l) <- Float.max max_rate_on.(l) rates.(f)) links)
        flows;
      Array.for_all
        (fun f ->
          Array.length flows.(f) = 0
          || Array.exists
               (fun l -> alloc.(l) >= caps.(l) -. 1e-6 && rates.(f) >= max_rate_on.(l) -. 1e-6)
               flows.(f))
        (Array.init (Array.length flows) Fun.id))

(* ---------- Incremental solver ---------- *)

(* Richer instances than the fairness properties: zero-capacity links,
   empty link sets, duplicate link ids — the corners the incremental
   solver must agree with the reference on, bit for bit. *)
let solver_instance_gen =
  QCheck2.Gen.(
    let* nlinks = int_range 1 12 in
    let* nflows = int_range 0 20 in
    let* caps =
      array_size (return nlinks)
        (oneof [ return 0.; float_range 1. 100. ])
    in
    let* flows =
      array_size (return nflows)
        (list_size (int_range 0 5) (int_bound (nlinks - 1)))
    in
    return (caps, Array.map Array.of_list flows))

let exactly_equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (fun x y -> Int64.bits_of_float x = Int64.bits_of_float y) a b

let prop_solver_matches_reference =
  QCheck2.Test.make
    ~name:"Solver rates and link allocs are bit-identical to the reference"
    ~count:500 solver_instance_gen
    (fun (caps, flows) ->
      let expect = Maxmin.allocate ~capacities:caps ~flow_links:flows in
      let deduped = Array.map Maxmin.dedup_links flows in
      let expect_alloc =
        Maxmin.link_allocation ~capacities:caps ~flow_links:deduped
          ~rates:expect
      in
      let sv = Maxmin.Solver.create ~nlinks:(Array.length caps) () in
      Array.iteri (fun l c -> Maxmin.Solver.set_capacity sv l c) caps;
      let slots = Array.map (fun links -> Maxmin.Solver.register sv links) deduped in
      Maxmin.Solver.solve sv slots (Array.length slots);
      let got = Array.map (fun s -> Maxmin.Solver.rate sv s) slots in
      exactly_equal expect got
      && exactly_equal expect_alloc (Maxmin.Solver.link_allocs sv))

(* Slot reuse: solving, retiring a subset of flows, admitting new ones,
   and solving again must still match a fresh reference run — the
   freelist and stale per-slot state must not leak into the next solve. *)
let prop_solver_slot_reuse =
  QCheck2.Test.make
    ~name:"Solver matches the reference across unregister/register churn"
    ~count:300
    QCheck2.Gen.(
      let* inst = solver_instance_gen in
      let* inst2 = solver_instance_gen in
      let* keep_mask = array_size (return (Array.length (snd inst))) bool in
      return (inst, inst2, keep_mask))
    (fun (((caps, flows), (_, flows2), keep_mask)) ->
      let nlinks = Array.length caps in
      let clamp links =
        Maxmin.dedup_links (Array.map (fun l -> l mod nlinks) links)
      in
      let sv = Maxmin.Solver.create ~nlinks () in
      Array.iteri (fun l c -> Maxmin.Solver.set_capacity sv l c) caps;
      let slots1 =
        Array.map (fun links -> Maxmin.Solver.register sv (clamp links)) flows
      in
      Maxmin.Solver.solve sv slots1 (Array.length slots1);
      (* churn: drop the unmasked flows, admit the second instance's *)
      let kept =
        Array.of_list
          (List.filteri
             (fun i _ -> keep_mask.(i))
             (Array.to_list slots1))
      in
      Array.iteri
        (fun i s -> if not keep_mask.(i) then Maxmin.Solver.unregister sv s)
        slots1;
      let fresh =
        Array.map (fun links -> Maxmin.Solver.register sv (clamp links)) flows2
      in
      let active = Array.append kept fresh in
      Maxmin.Solver.solve sv active (Array.length active);
      let kept_links =
        Array.of_list
          (List.filteri (fun i _ -> keep_mask.(i)) (Array.to_list flows))
      in
      let ref_links =
        Array.map clamp (Array.append kept_links flows2)
      in
      let expect = Maxmin.allocate ~capacities:caps ~flow_links:ref_links in
      let got = Array.map (fun s -> Maxmin.Solver.rate sv s) active in
      exactly_equal expect got)

let test_solver_validation () =
  let expect_invalid name f =
    Alcotest.(check bool) name true
      (match f () with exception Invalid_argument _ -> true | _ -> false)
  in
  expect_invalid "negative nlinks" (fun () ->
      Maxmin.Solver.create ~nlinks:(-1) ());
  expect_invalid "nan capacity" (fun () ->
      Maxmin.Solver.create ~capacity:Float.nan ~nlinks:1 ());
  let sv = Maxmin.Solver.create ~capacity:1. ~nlinks:3 () in
  expect_invalid "unsorted links" (fun () ->
      Maxmin.Solver.register sv [| 2; 1 |]);
  expect_invalid "duplicate links" (fun () ->
      Maxmin.Solver.register sv [| 1; 1 |]);
  expect_invalid "out-of-range link" (fun () ->
      Maxmin.Solver.register sv [| 0; 3 |]);
  expect_invalid "negative capacity" (fun () ->
      Maxmin.Solver.set_capacity sv 0 (-1.));
  let s = Maxmin.Solver.register sv [| 0; 2 |] in
  Maxmin.Solver.unregister sv s;
  expect_invalid "stale slot" (fun () -> Maxmin.Solver.rate sv s);
  expect_invalid "unknown slot in solve" (fun () ->
      Maxmin.Solver.solve sv [| 99 |] 1);
  (* empty link set: unconstrained, infinity, even after slot reuse *)
  let s2 = Maxmin.Solver.register sv [||] in
  Maxmin.Solver.solve sv [| s2 |] 1;
  Alcotest.(check bool) "empty set is unconstrained" true
    (Maxmin.Solver.rate sv s2 = Float.infinity);
  Alcotest.(check int) "solve count" 1 (Maxmin.Solver.solves sv)

(* ---------- Tcp ---------- *)

let test_tcp_window_pump () =
  let s = Tcp.Sender.create ~total:100 in
  let sent = ref [] in
  let rec pump () =
    match Tcp.Sender.next_to_send s with
    | Some seq ->
      sent := seq :: !sent;
      pump ()
    | None -> ()
  in
  pump ();
  (* initial cwnd of 10 segments *)
  Alcotest.(check (list int)) "initial window" [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !sent)

let test_tcp_slow_start_growth () =
  let s = Tcp.Sender.create ~total:1000 in
  let before = Tcp.Sender.cwnd s in
  ignore (Tcp.Sender.next_to_send s);
  ignore (Tcp.Sender.on_ack s 1);
  Alcotest.(check bool) "cwnd +1 in slow start" true (Tcp.Sender.cwnd s = before +. 1.)

let test_tcp_fast_retransmit () =
  let s = Tcp.Sender.create ~total:100 in
  for _ = 1 to 12 do
    ignore (Tcp.Sender.next_to_send s)
  done;
  ignore (Tcp.Sender.on_ack s 1);
  (* three duplicate ACKs for 1 *)
  Alcotest.(check (list int)) "no rtx yet" [] (Tcp.Sender.on_ack s 1);
  Alcotest.(check (list int)) "no rtx yet" [] (Tcp.Sender.on_ack s 1);
  Alcotest.(check (list int)) "fast retransmit of 1" [ 1 ] (Tcp.Sender.on_ack s 1);
  Alcotest.(check bool) "cwnd halved" true (Tcp.Sender.cwnd s <= 6.)

let test_tcp_timeout_gobackn () =
  let s = Tcp.Sender.create ~total:100 in
  for _ = 1 to 10 do
    ignore (Tcp.Sender.next_to_send s)
  done;
  let gen = Tcp.Sender.arm_timer s in
  Alcotest.(check (list int)) "stale generation ignored" []
    (Tcp.Sender.on_timeout s ~gen:(gen - 1));
  Alcotest.(check (list int)) "head retransmitted" [ 0 ] (Tcp.Sender.on_timeout s ~gen);
  Alcotest.(check bool) "cwnd collapsed" true (Tcp.Sender.cwnd s = 1.)

let test_tcp_done () =
  let s = Tcp.Sender.create ~total:3 in
  for _ = 1 to 3 do
    ignore (Tcp.Sender.next_to_send s)
  done;
  ignore (Tcp.Sender.on_ack s 3);
  Alcotest.(check bool) "done" true (Tcp.Sender.is_done s);
  Alcotest.(check bool) "no more to send" true (Tcp.Sender.next_to_send s = None)

let test_tcp_rtt_estimator () =
  let s = Tcp.Sender.create ~total:10 in
  Tcp.Sender.observe_rtt s 0.010;
  Alcotest.(check bool) "rto above srtt" true (Tcp.Sender.rto s >= 0.010);
  Tcp.Sender.observe_rtt s 0.010;
  Tcp.Sender.observe_rtt s 0.010;
  Alcotest.(check bool) "rto converges near srtt" true (Tcp.Sender.rto s < 0.05)

let test_tcp_receiver_reorder () =
  let r = Tcp.Receiver.create () in
  Alcotest.(check int) "in order" 1 (Tcp.Receiver.on_data r 0);
  Alcotest.(check int) "gap held" 1 (Tcp.Receiver.on_data r 2);
  Alcotest.(check int) "gap held" 1 (Tcp.Receiver.on_data r 3);
  Alcotest.(check int) "gap filled advances past buffer" 4 (Tcp.Receiver.on_data r 1);
  Alcotest.(check int) "duplicate is harmless" 4 (Tcp.Receiver.on_data r 2)

(* Property: whatever event sequence the network throws at a sender -
   spurious ACKs beyond what was sent, timeouts, adversarial RTT samples
   (zero, negative, nan, huge) - the core safety invariants hold:
   snd_una never regresses, cwnd stays >= 1 segment, and the RTO stays
   inside its clamp. *)
let tcp_op_gen =
  QCheck2.Gen.(
    oneof
      [
        return `Send;
        map (fun a -> `Ack a) (int_bound 60);
        return `Timeout;
        map
          (fun r -> `Rtt r)
          (oneofl [ -1.; 0.; Float.nan; 1e-9; 1e-6; 0.004; 0.05; 1.; 10.; 1000. ]);
      ])

let prop_tcp_sender_invariants =
  QCheck2.Test.make ~name:"tcp sender: snd_una monotone, cwnd >= 1, rto clamped"
    ~count:500
    QCheck2.Gen.(list_size (int_range 1 200) tcp_op_gen)
    (fun ops ->
      let s = Tcp.Sender.create ~total:50 in
      List.for_all
        (fun op ->
          let una0 = Tcp.Sender.snd_una s in
          (match op with
           | `Send -> ignore (Tcp.Sender.next_to_send s)
           | `Ack a -> ignore (Tcp.Sender.on_ack s a)
           | `Timeout ->
             let gen = Tcp.Sender.arm_timer s in
             ignore (Tcp.Sender.on_timeout s ~gen)
           | `Rtt r -> Tcp.Sender.observe_rtt s r);
          Tcp.Sender.snd_una s >= una0
          && Tcp.Sender.cwnd s >= 1.
          && Tcp.Sender.rto s >= Tcp.Sender.min_rto
          && Tcp.Sender.rto s <= Tcp.Sender.max_rto)
        ops)

(* ---------- Flowsim ---------- *)

let topo = lazy (Generator.generate ~seed:31 ())
let table = lazy (Routing_table.create (Lazy.force topo).Generator.graph)

let quick_params =
  { Flowsim.default_params with Flowsim.max_time = 30. }

let mk_flows specs =
  Array.of_list
    (List.map
       (fun (src, dst, start) ->
         { Flowsim.src; dst; size_bits = 8e6 (* 1 MB *); start })
       specs)

let test_flowsim_single_flow () =
  let table = Lazy.force table in
  (* 10 MB so the transfer spans many epochs and the average is sharp *)
  let flows = [| { Flowsim.src = 100; dst = 200; size_bits = 8e7; start = 0. } |] in
  let r = Flowsim.run ~params:quick_params table Flowsim.Bgp flows in
  Alcotest.(check int) "one flow" 1 (Array.length r.Flowsim.flows);
  let s = r.Flowsim.flows.(0) in
  Alcotest.(check bool) "completed" true s.Flowsim.completed;
  (* alone in the network: full link rate *)
  Alcotest.(check bool) "rate ~1Gbps" true (s.Flowsim.throughput > 0.85e9);
  Alcotest.(check int) "no switches under BGP" 0 s.Flowsim.switches

let test_flowsim_sharing () =
  let table = Lazy.force table in
  (* many flows between the same pair share the same default path *)
  let flows = mk_flows (List.init 4 (fun _ -> (100, 200, 0.))) in
  let r = Flowsim.run ~params:quick_params table Flowsim.Bgp flows in
  Array.iter
    (fun (s : Flowsim.flow_stats) ->
      Alcotest.(check bool) "quarter of the link each" true
        (s.Flowsim.throughput < 0.3e9 && s.Flowsim.throughput > 0.15e9))
    r.Flowsim.flows

let test_flowsim_deterministic () =
  let table = Lazy.force table in
  let n = As_graph.n (Routing_table.graph table) in
  let flows =
    Mifo_traffic.Traffic.uniform (Mifo_util.Prng.create ~seed:3 ()) ~n_ases:n ~count:150
      ~rate:2000. ()
  in
  let d = Deployment.full ~n in
  let r1 = Flowsim.run ~params:quick_params table (Flowsim.Mifo d) flows in
  let r2 = Flowsim.run ~params:quick_params table (Flowsim.Mifo d) flows in
  Alcotest.(check (array (float 1e-9))) "identical runs"
    (Flowsim.throughputs r1) (Flowsim.throughputs r2)

let test_flowsim_bgp_never_offloads () =
  let table = Lazy.force table in
  let flows = mk_flows (List.init 10 (fun i -> (100 + i, 200, 0.))) in
  let r = Flowsim.run ~params:quick_params table Flowsim.Bgp flows in
  check_float "no offload" 0. r.Flowsim.offload_fraction

let test_flowsim_mifo_paths_valley_free () =
  let table = Lazy.force table in
  let g = Routing_table.graph table in
  let n = As_graph.n g in
  let flows =
    Mifo_traffic.Traffic.uniform (Mifo_util.Prng.create ~seed:4 ()) ~n_ases:n ~count:300
      ~rate:4000. ()
  in
  let r = Flowsim.run ~params:quick_params table (Flowsim.Mifo (Deployment.full ~n)) flows in
  let switched = ref 0 in
  Array.iter
    (fun (s : Flowsim.flow_stats) ->
      if s.Flowsim.used_alt then incr switched;
      Alcotest.(check bool) "final path valley-free" true
        (As_graph.path_is_valley_free g (Array.to_list s.Flowsim.final_path)))
    r.Flowsim.flows;
  Alcotest.(check bool) "some flows actually deflected" true (!switched > 0)

(* Diamond with a link failure: BGP flows stall forever, MIFO routes
   around within an epoch. *)
let test_flowsim_link_failure () =
  let g =
    As_graph.create ~n:6
      ~edges:
        [
          (1, 0, As_graph.Provider_customer);
          (2, 0, As_graph.Provider_customer);
          (3, 1, As_graph.Provider_customer);
          (3, 2, As_graph.Provider_customer);
          (3, 4, As_graph.Provider_customer);
          (3, 5, As_graph.Provider_customer);
        ]
  in
  let table = Routing_table.create g in
  let flows =
    [|
      { Flowsim.src = 4; dst = 0; size_bits = 8e7; start = 0. };
      { Flowsim.src = 5; dst = 0; size_bits = 8e7; start = 0. };
    |]
  in
  let params = { Flowsim.default_params with Flowsim.max_time = 5. } in
  (* default paths run 3 -> 1 -> 0; cut (3, 1) at t = 0.05 *)
  let failures = [ (0.05, (3, 1)) ] in
  let bgp = Flowsim.run ~params ~failures table Flowsim.Bgp flows in
  Array.iter
    (fun (s : Flowsim.flow_stats) ->
      Alcotest.(check bool) "BGP flow stalls on the dead link" false s.Flowsim.completed)
    bgp.Flowsim.flows;
  let mifo = Flowsim.run ~params ~failures table (Flowsim.Mifo (Deployment.full ~n:6)) flows in
  Array.iter
    (fun (s : Flowsim.flow_stats) ->
      Alcotest.(check bool) "MIFO flow routes around" true s.Flowsim.completed;
      Alcotest.(check bool) "finishes quickly" true (s.Flowsim.finish < 1.0))
    mifo.Flowsim.flows

let test_flowsim_failure_validation () =
  let table = Lazy.force table in
  let flows = mk_flows [ (1, 2, 0.) ] in
  Alcotest.(check bool) "non-adjacent failure rejected" true
    (match Flowsim.run ~failures:[ (0., (1, 1)) ] table Flowsim.Bgp flows with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_flowsim_rejects_bad_specs () =
  let table = Lazy.force table in
  let bad = [| { Flowsim.src = 1; dst = 1; size_bits = 1.; start = 0. } |] in
  Alcotest.(check bool) "src=dst rejected" true
    (match Flowsim.run table Flowsim.Bgp bad with
     | exception Invalid_argument _ -> true
     | _ -> false)

(* The incremental engine (with and without clean-epoch skipping) and
   the reference engine must agree bit for bit on a full run — rates,
   series, everything.  This is the determinism contract the 3x-epoch
   speedup rests on: skipping a solve is only sound because re-running
   it would reproduce the exact same floats. *)
let test_flowsim_engines_bit_identical () =
  let topo = Lazy.force topo in
  let table = Lazy.force table in
  let n = As_graph.n topo.Generator.graph in
  (* long-lived flows (hundreds of epochs each) so that most epochs see
     no arrival/completion/switch and are skippable *)
  let flows =
    Array.of_list
      (List.map
         (fun (src, dst, start) ->
           { Flowsim.src; dst; size_bits = 4e8; start })
         [
           (100, 200, 0.); (101, 200, 0.1); (102, 200, 0.2); (150, 250, 0.3);
           (151, 250, 2.0); (152, 250, 6.0); (103, 200, 6.1); (104, 200, 12.0);
         ])
  in
  let run engine skip =
    Flowsim.run
      ~params:
        {
          quick_params with
          Flowsim.engine;
          skip_clean_epochs = skip;
          max_time = 20.;
        }
      table
      (Flowsim.Mifo (Deployment.full ~n))
      flows
  in
  let skip_on = run Flowsim.Incremental true in
  let skip_off = run Flowsim.Incremental false in
  let reference = run Flowsim.Reference true in
  let bits r =
    Array.map Int64.bits_of_float (Flowsim.throughputs r)
  in
  Alcotest.(check (array int64))
    "skip on = skip off" (bits skip_off) (bits skip_on);
  Alcotest.(check (array int64))
    "incremental = reference" (bits reference) (bits skip_off);
  let series_bits (r : Flowsim.result) =
    Array.concat
      (List.map
         (fun (t, v) -> [| Int64.bits_of_float t; Int64.bits_of_float v |])
         (Array.to_list r.Flowsim.series))
  in
  Alcotest.(check (array int64))
    "series identical" (series_bits reference) (series_bits skip_on);
  Alcotest.(check int) "same epochs" reference.Flowsim.epochs skip_on.Flowsim.epochs;
  (* the whole point: clean epochs were actually skipped *)
  Alcotest.(check bool) "skipping happened" true
    (skip_on.Flowsim.solves < skip_on.Flowsim.epochs);
  Alcotest.(check int) "skip off solves every epoch"
    skip_off.Flowsim.epochs skip_off.Flowsim.solves;
  Alcotest.(check int) "reference solves every epoch"
    reference.Flowsim.epochs reference.Flowsim.solves

(* Series sampling must stay phase-locked to the interval grid.  With
   dt = 0.01 and interval = 0.025, anchoring the cursor at the (dt-
   quantized) epoch time drifts the effective period to 0.03 — a 20%
   sample deficit.  The grid-snapped cursor yields exactly one sample
   per grid point covered by the run. *)
let test_flowsim_series_grid () =
  let table = Lazy.force table in
  let params =
    {
      Flowsim.default_params with
      Flowsim.max_time = 10.;
      series_interval = 0.025;
    }
  in
  (* one flow too large to finish: the sim runs the full horizon *)
  let flows = [| { Flowsim.src = 100; dst = 200; size_bits = 1e12; start = 0. } |] in
  let r = Flowsim.run ~params table Flowsim.Bgp flows in
  let expected =
    1 + int_of_float (Float.floor (r.Flowsim.sim_end /. params.Flowsim.series_interval))
  in
  Alcotest.(check int) "one sample per grid point" expected
    (Array.length r.Flowsim.series);
  (* sample timestamps strictly increase and never bunch (no catch-up
     bursts after idle gaps); a sample may fire up to dt late while the
     next lands back on the grid, so the spacing floor is interval - dt *)
  let late = mk_flows [ (100, 200, 0.); (101, 200, 8.) ] in
  let r2 = Flowsim.run ~params table Flowsim.Bgp late in
  let min_spacing =
    params.Flowsim.series_interval -. params.Flowsim.dt -. 1e-9
  in
  let ok = ref true in
  Array.iteri
    (fun i (t, _) ->
      if i > 0 then begin
        let prev, _ = r2.Flowsim.series.(i - 1) in
        if t -. prev < min_spacing then ok := false
      end)
    r2.Flowsim.series;
  Alcotest.(check bool) "no sample bunching" true !ok

(* ---------- Packetsim ---------- *)

(* Two hosts connected through two routers in a line. *)
let line_network ?config ?(rate = 1e9) () =
  let sim = Packetsim.create ?config () in
  let h1 = Packetsim.add_host sim ~addr:(Prefix.host_of_as 1 1) in
  let h2 = Packetsim.add_host sim ~addr:(Prefix.host_of_as 2 1) in
  let r1 = Packetsim.add_router sim ~as_id:1 in
  let r2 = Packetsim.add_router sim ~as_id:2 in
  let local = Engine.Local in
  let _, r1h = Packetsim.connect sim ~a:h1 ~b:r1 ~kind_ab:local ~kind_ba:local ~rate () in
  let _, r2h = Packetsim.connect sim ~a:h2 ~b:r2 ~kind_ab:local ~kind_ba:local ~rate () in
  let r1r2, r2r1 =
    Packetsim.connect sim ~a:r1 ~b:r2
      ~kind_ab:(Engine.Ebgp { neighbor_as = 2; rel = Relationship.Customer })
      ~kind_ba:(Engine.Ebgp { neighbor_as = 1; rel = Relationship.Provider })
      ~rate ()
  in
  Fib.insert (Packetsim.fib sim r1) (Prefix.of_as 2) ~out_port:r1r2 ();
  Fib.insert (Packetsim.fib sim r1) (Prefix.of_as 1) ~out_port:r1h ();
  Fib.insert (Packetsim.fib sim r2) (Prefix.of_as 2) ~out_port:r2h ();
  Fib.insert (Packetsim.fib sim r2) (Prefix.of_as 1) ~out_port:r2r1 ();
  (sim, h1, h2)

let test_packetsim_transfer_completes () =
  let sim, h1, h2 = line_network () in
  let _ = Packetsim.add_flow sim ~src:h1 ~dst:h2 ~bytes:1_000_000 ~start:0. in
  Packetsim.run sim;
  let results = Packetsim.flow_results sim in
  Alcotest.(check int) "one flow" 1 (Array.length results);
  (match results.(0).Packetsim.finish with
   | Some f ->
     (* 8 Mbit at ~1 Gbps with ACK overhead: well under 100 ms *)
     Alcotest.(check bool) "reasonable FCT" true (f > 0.008 && f < 0.1)
   | None -> Alcotest.fail "did not finish");
  let c = Packetsim.counters sim in
  Alcotest.(check int) "all segments delivered" 1000 c.Packetsim.delivered_packets;
  Alcotest.(check int) "no valley drops" 0 c.Packetsim.dropped_valley

let test_packetsim_goodput_series () =
  let sim, h1, h2 = line_network () in
  let _ = Packetsim.add_flow sim ~src:h1 ~dst:h2 ~bytes:2_000_000 ~start:0. in
  Packetsim.run sim;
  let series = Packetsim.throughput_series sim in
  let total_bits =
    Array.fold_left (fun acc (_, v) -> acc +. (v *. (Packetsim.config sim).Packetsim.series_interval)) 0. series
  in
  Alcotest.(check bool) "series accounts for the transfer" true
    (abs_float (total_bits -. 16e6) < 16e4)

let test_packetsim_two_flows_share () =
  let sim, h1, h2 = line_network () in
  let _ = Packetsim.add_flow sim ~src:h1 ~dst:h2 ~bytes:2_000_000 ~start:0. in
  let _ = Packetsim.add_flow sim ~src:h1 ~dst:h2 ~bytes:2_000_000 ~start:0. in
  Packetsim.run sim;
  let results = Packetsim.flow_results sim in
  Array.iter
    (fun (r : Packetsim.flow_result) ->
      match r.Packetsim.finish with
      | Some f -> Alcotest.(check bool) "both slower than solo" true (f > 0.02)
      | None -> Alcotest.fail "did not finish")
    results

(* End-to-end bit-identity of the eventq engines: the same workload —
   a TCP transfer with queue drops and retransmissions plus an
   open-loop UDP blast — must produce identical observable results
   under every (engine x packet_trains) combination.  The heap with
   per-packet scheduling is the oracle; the wheel with trains is the
   production fast path. *)
let pkt_fingerprint sim =
  let finishes =
    Array.map
      (fun (r : Packetsim.flow_result) ->
        match r.Packetsim.finish with
        | Some f -> Int64.bits_of_float f
        | None -> Int64.minus_one)
      (Packetsim.flow_results sim)
  in
  (Packetsim.events_processed sim, finishes, Packetsim.counters sim)

let test_packetsim_engines_bit_identical () =
  let run engine trains =
    let config =
      {
        Packetsim.default_config with
        Packetsim.eventq_engine = engine;
        packet_trains = trains;
        queue_bits = 100_000;
      }
    in
    let sim, h1, h2 = line_network ~config ~rate:1e8 () in
    let _ = Packetsim.add_flow sim ~src:h1 ~dst:h2 ~bytes:400_000 ~start:0. in
    let _ = Packetsim.add_udp_flow sim ~src:h1 ~dst:h2 ~bytes:200_000 ~start:0.002 () in
    Packetsim.run ~until:30. sim;
    let c = Packetsim.counters sim in
    Alcotest.(check bool) "small queue forces drops" true (c.Packetsim.dropped_queue > 0);
    pkt_fingerprint sim
  in
  let oracle = run Eventq.Heap false in
  List.iter
    (fun (engine, trains) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s/trains=%b bit-identical to the heap oracle"
           (Eventq.engine_name engine) trains)
        true
        (run engine trains = oracle))
    [ (Eventq.Heap, true); (Eventq.Wheel, false); (Eventq.Wheel, true) ]

let test_packetsim_ttl_on_routing_loop () =
  (* misconfigured FIBs that point at each other: packets must die by TTL,
     not hang the simulator *)
  let sim = Packetsim.create () in
  let h1 = Packetsim.add_host sim ~addr:(Prefix.host_of_as 1 1) in
  let r1 = Packetsim.add_router sim ~as_id:1 in
  let r2 = Packetsim.add_router sim ~as_id:2 in
  let local = Engine.Local in
  ignore (Packetsim.connect sim ~a:h1 ~b:r1 ~kind_ab:local ~kind_ba:local ~rate:1e9 ());
  let r1r2, r2r1 =
    Packetsim.connect sim ~a:r1 ~b:r2
      ~kind_ab:(Engine.Ebgp { neighbor_as = 2; rel = Relationship.Peer })
      ~kind_ba:(Engine.Ebgp { neighbor_as = 1; rel = Relationship.Peer })
      ~rate:1e9 ()
  in
  (* both routers send AS1-destined traffic at each other: a routing loop *)
  Fib.insert (Packetsim.fib sim r1) (Prefix.of_as 1) ~out_port:r1r2 ();
  Fib.insert (Packetsim.fib sim r2) (Prefix.of_as 1) ~out_port:r2r1 ();
  let _ = Packetsim.add_flow sim ~src:h1 ~dst:h1 ~bytes:1000 ~start:0. in
  Packetsim.run ~until:1.0 sim;
  let c = Packetsim.counters sim in
  Alcotest.(check bool) "loop killed by ttl" true (c.Packetsim.dropped_ttl > 0)

let test_packetsim_tunnel_transit () =
  (* Regression (tunnel-transit bug).  AS 1 has three border routers
     r1 -- r2 -- r3 in a line (non-full-mesh iBGP, so r1's tunnel to r3
     transits r2) plus an eBGP neighbor rx.  r1's default egress for the
     destination is congested-by-decree (deflect_buckets pinned at max),
     so every packet is tunneled to r3 and crosses r2 IN TRANSIT.  r2
     itself also deflects the destination prefix toward its eBGP
     alternative.  Pre-fix, r2 looked the tunneled packet up by its
     INNER destination, hash-deflected it out the eBGP port still
     encapsulated, and the transfer stalled at a no-route neighbor;
     post-fix it is routed on the outer header to r3, decapsulated there
     and delivered. *)
  let sim = Packetsim.create () in
  let h1 = Packetsim.add_host sim ~addr:(Prefix.host_of_as 1 1) in
  let h2 = Packetsim.add_host sim ~addr:(Prefix.host_of_as 2 1) in
  let r1 = Packetsim.add_router sim ~as_id:1 in
  let r2 = Packetsim.add_router sim ~as_id:1 in
  let r3 = Packetsim.add_router sim ~as_id:1 in
  let rx = Packetsim.add_router sim ~as_id:3 in
  let local = Engine.Local in
  let rate = 1e9 in
  let _, r1h = Packetsim.connect sim ~a:h1 ~b:r1 ~kind_ab:local ~kind_ba:local ~rate () in
  let _, r3h = Packetsim.connect sim ~a:h2 ~b:r3 ~kind_ab:local ~kind_ba:local ~rate () in
  (* r1 reaches iBGP peer r3 through r2: the port toward r2 is how r1
     sees the path to r3, and r2 in turn owns a direct port to r3 *)
  let r1_r2, r2_r1 =
    Packetsim.connect sim ~a:r1 ~b:r2
      ~kind_ab:(Engine.Ibgp { peer_router = r3 })
      ~kind_ba:(Engine.Ibgp { peer_router = r1 })
      ~rate ()
  in
  let r2_r3, r3_r2 =
    Packetsim.connect sim ~a:r2 ~b:r3
      ~kind_ab:(Engine.Ibgp { peer_router = r3 })
      ~kind_ba:(Engine.Ibgp { peer_router = r2 })
      ~rate ()
  in
  (* eBGP customer rx: r1's default egress and r2's tempting alternative.
     A CUSTOMER, so the tag-check alone would not stop the leak. *)
  let r1_rx, _ =
    Packetsim.connect sim ~a:r1 ~b:rx
      ~kind_ab:(Engine.Ebgp { neighbor_as = 3; rel = Relationship.Customer })
      ~kind_ba:(Engine.Ebgp { neighbor_as = 1; rel = Relationship.Provider })
      ~rate ()
  in
  let r2_rx, _ =
    Packetsim.connect sim ~a:r2 ~b:rx
      ~kind_ab:(Engine.Ebgp { neighbor_as = 3; rel = Relationship.Customer })
      ~kind_ba:(Engine.Ebgp { neighbor_as = 1; rel = Relationship.Provider })
      ~rate ()
  in
  let pin fib prefix ~out_port ~alt_port =
    Fib.insert fib prefix ~out_port ~alt_port ();
    Fib.set_deflect_buckets (Option.get (Fib.find fib prefix)) Fib.buckets
  in
  let dst = Prefix.of_as 2 and back = Prefix.of_as 1 in
  (* r1: default egress rx (a dead end), alternative = tunnel to r3 *)
  pin (Packetsim.fib sim r1) dst ~out_port:r1_rx ~alt_port:r1_r2;
  Fib.insert (Packetsim.fib sim r1) back ~out_port:r1h ();
  (* r2: also deflecting the destination prefix toward its eBGP port *)
  pin (Packetsim.fib sim r2) dst ~out_port:r2_r3 ~alt_port:r2_rx;
  Fib.insert (Packetsim.fib sim r2) back ~out_port:r2_r1 ();
  Fib.insert (Packetsim.fib sim r3) dst ~out_port:r3h ();
  Fib.insert (Packetsim.fib sim r3) back ~out_port:r3_r2 ();
  (* rx: no route anywhere - a leaked tunnel dies here *)
  let transit0 = Mifo_util.Obs.counter_value "engine.transit.routed" in
  let transits = ref 0 and leaked = ref 0 in
  Packetsim.set_tracer sim (fun _ node p action ->
      match action with
      | Engine.Send { port; packet = p'; _ } ->
        if node = r2 && p.Mifo_core.Packet.encap <> None then begin
          incr transits;
          if port <> r2_r3 || p'.Mifo_core.Packet.encap = None then incr leaked
        end
      | Engine.Drop _ -> ());
  let _ = Packetsim.add_flow sim ~src:h1 ~dst:h2 ~bytes:100_000 ~start:0. in
  Packetsim.run ~until:1.0 sim;
  Alcotest.(check bool) "tunneled packets crossed r2" true (!transits > 0);
  Alcotest.(check int) "none deflected off the tunnel path" 0 !leaked;
  (match (Packetsim.flow_results sim).(0).Packetsim.finish with
   | Some _ -> ()
   | None -> Alcotest.fail "transfer stalled: tunnel leaked out of the AS");
  let c = Packetsim.counters sim in
  Alcotest.(check int) "all segments delivered" 100 c.Packetsim.delivered_packets;
  Alcotest.(check int) "nothing lost to no-route" 0 c.Packetsim.dropped_no_route;
  Alcotest.(check bool) "transit hops counted" true
    (Mifo_util.Obs.counter_value "engine.transit.routed" > transit0)

let test_packetsim_ranked_chooser () =
  (* A ranked chooser drives Daemon.epoch_ranked from the daemon tick:
     r1's slow default link to AS 2 congests, the chooser offers its two
     fast parallel links as a ranked pair, and the daemon installs both
     slots and ramps the deflection level against the set. *)
  let sim = Packetsim.create () in
  let h1 = Packetsim.add_host sim ~addr:(Prefix.host_of_as 1 1) in
  let h2 = Packetsim.add_host sim ~addr:(Prefix.host_of_as 2 1) in
  let r1 = Packetsim.add_router sim ~as_id:1 in
  let r2 = Packetsim.add_router sim ~as_id:2 in
  let local = Engine.Local in
  let down = Engine.Ebgp { neighbor_as = 2; rel = Relationship.Customer } in
  let up = Engine.Ebgp { neighbor_as = 1; rel = Relationship.Provider } in
  let _, r1h = Packetsim.connect sim ~a:h1 ~b:r1 ~kind_ab:local ~kind_ba:local ~rate:1e9 () in
  let _, r2h = Packetsim.connect sim ~a:h2 ~b:r2 ~kind_ab:local ~kind_ba:local ~rate:1e9 () in
  let slow, slow_back =
    Packetsim.connect sim ~a:r1 ~b:r2 ~kind_ab:down ~kind_ba:up ~rate:10e6 ()
  in
  let alt_a, _ = Packetsim.connect sim ~a:r1 ~b:r2 ~kind_ab:down ~kind_ba:up ~rate:1e9 () in
  let alt_b, _ = Packetsim.connect sim ~a:r1 ~b:r2 ~kind_ab:down ~kind_ba:up ~rate:1e9 () in
  Fib.insert (Packetsim.fib sim r1) (Prefix.of_as 2) ~out_port:slow ();
  Fib.insert (Packetsim.fib sim r1) (Prefix.of_as 1) ~out_port:r1h ();
  Fib.insert (Packetsim.fib sim r2) (Prefix.of_as 2) ~out_port:r2h ();
  Fib.insert (Packetsim.fib sim r2) (Prefix.of_as 1) ~out_port:slow_back ();
  Packetsim.set_ranked_chooser sim r1 (fun _ _ -> [ alt_a; alt_b ]);
  let _ = Packetsim.add_flow sim ~src:h1 ~dst:h2 ~bytes:2_000_000 ~start:0. in
  let _ = Packetsim.add_flow sim ~src:h1 ~dst:h2 ~bytes:2_000_000 ~start:0. in
  Packetsim.run ~until:10. sim;
  let entry = Option.get (Fib.find (Packetsim.fib sim r1) (Prefix.of_as 2)) in
  Alcotest.(check (list int)) "ranked pair installed" [ alt_a; alt_b; -1; -1 ]
    (List.init Fib.max_alts (Fib.alt_at entry));
  Alcotest.(check bool) "daemon ramped against the set" true
    (Fib.deflect_buckets entry > 0);
  let c = Packetsim.counters sim in
  Alcotest.(check bool) "packets deflected" true (c.Packetsim.deflected > 0);
  Array.iter
    (fun (r : Packetsim.flow_result) ->
      match r.Packetsim.finish with
      | Some _ -> ()
      | None -> Alcotest.fail "transfer did not complete")
    (Packetsim.flow_results sim)

(* ---------- Sharded packetsim ---------- *)

(* The deterministic two-shard split of the line network: hosts ride
   with their routers, the single eBGP link is the cut. *)
let test_packetsim_sharded_line () =
  Mifo_util.Parallel.set_default_jobs 2;
  let serial =
    let sim, h1, h2 = line_network ~rate:1e8 () in
    let _ = Packetsim.add_flow sim ~src:h1 ~dst:h2 ~bytes:500_000 ~start:0. in
    Packetsim.run sim;
    pkt_fingerprint sim
  in
  let sim, h1, h2 = line_network ~rate:1e8 () in
  (* node order in line_network: h1 h2 r1 r2 *)
  Packetsim.set_shards sim [| 0; 1; 0; 1 |];
  let _ = Packetsim.add_flow sim ~src:h1 ~dst:h2 ~bytes:500_000 ~start:0. in
  Packetsim.run sim;
  Alcotest.(check bool) "sharded bit-identical to serial" true
    (pkt_fingerprint sim = serial);
  let st = Packetsim.shard_stats sim in
  Alcotest.(check int) "two shards" 2 st.Packetsim.shards;
  Alcotest.(check int) "one cut link" 1 st.Packetsim.cut_links;
  check_float "lookahead = link delay" 50e-6 st.Packetsim.lookahead;
  Alcotest.(check bool) "windows ran" true (st.Packetsim.windows > 1);
  Alcotest.(check bool) "barrier ticks ran" true (st.Packetsim.barrier_ticks > 0)

let test_packetsim_shard_validation () =
  let sim, _, _ = line_network () in
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Packetsim.set_shards: need exactly one shard id per node")
    (fun () -> Packetsim.set_shards sim [| 0; 1 |]);
  Alcotest.check_raises "zero-latency cut"
    (Invalid_argument
       "Packetsim.set_shards: zero-latency cross-shard link leaves no lookahead")
    (fun () ->
      let sim = Packetsim.create () in
      let r1 = Packetsim.add_router sim ~as_id:1 in
      let r2 = Packetsim.add_router sim ~as_id:2 in
      ignore
        (Packetsim.connect sim ~a:r1 ~b:r2
           ~kind_ab:(Engine.Ebgp { neighbor_as = 2; rel = Relationship.Peer })
           ~kind_ba:(Engine.Ebgp { neighbor_as = 1; rel = Relationship.Peer })
           ~rate:1e9 ~delay:0. ());
      Packetsim.set_shards sim [| 0; 1 |]);
  let sim2, h1, h2 = line_network () in
  Packetsim.set_shards sim2 [| 0; 1; 0; 1 |];
  let _ = Packetsim.add_flow sim2 ~src:h1 ~dst:h2 ~bytes:8_000 ~start:0. in
  Packetsim.run sim2;
  Alcotest.check_raises "reassignment after run"
    (Invalid_argument "Packetsim.set_shards: must be called before the first run")
    (fun () -> Packetsim.set_shards sim2 [| 0; 1; 0; 1 |])

(* Mailbox drain order on a crafted exact-float tie.  Two source shards
   each deliver one UDP segment to the same destination router at the
   same instant (symmetric links, symmetric sources).  The shard seqs
   are symmetric too, so the drain rule's last key — source shard id —
   decides which packet is scheduled first and wins the one-packet
   bottleneck queue toward the sink; the other is tail-dropped.  Serial
   agrees: flow A was added first, so its segment transmits first. *)
let test_packetsim_mailbox_tie_order () =
  let run ~sharded =
    let sim = Packetsim.create () in
    let ha = Packetsim.add_host sim ~addr:(Prefix.host_of_as 1 1) in
    let hb = Packetsim.add_host sim ~addr:(Prefix.host_of_as 2 1) in
    let hc = Packetsim.add_host sim ~addr:(Prefix.host_of_as 3 1) in
    let ra = Packetsim.add_router sim ~as_id:1 in
    let rb = Packetsim.add_router sim ~as_id:2 in
    let rc = Packetsim.add_router sim ~as_id:3 in
    let local = Engine.Local in
    let down as' = Engine.Ebgp { neighbor_as = as'; rel = Relationship.Customer } in
    let up as' = Engine.Ebgp { neighbor_as = as'; rel = Relationship.Provider } in
    let rate = 1e8 in
    ignore (Packetsim.connect sim ~a:ha ~b:ra ~kind_ab:local ~kind_ba:local ~rate ());
    ignore (Packetsim.connect sim ~a:hb ~b:rb ~kind_ab:local ~kind_ba:local ~rate ());
    let _, rc_h =
      (* sink link: room for one 8000-bit segment in flight, not two *)
      Packetsim.connect sim ~a:hc ~b:rc ~kind_ab:local ~kind_ba:local ~rate
        ~queue_bits:9_000 ()
    in
    let ra_rc, rc_ra =
      Packetsim.connect sim ~a:ra ~b:rc ~kind_ab:(down 3) ~kind_ba:(up 1) ~rate
        ~delay:100e-6 ()
    in
    let rb_rc, rc_rb =
      Packetsim.connect sim ~a:rb ~b:rc ~kind_ab:(down 3) ~kind_ba:(up 2) ~rate
        ~delay:100e-6 ()
    in
    Fib.insert (Packetsim.fib sim ra) (Prefix.of_as 3) ~out_port:ra_rc ();
    Fib.insert (Packetsim.fib sim rb) (Prefix.of_as 3) ~out_port:rb_rc ();
    Fib.insert (Packetsim.fib sim rc) (Prefix.of_as 3) ~out_port:rc_h ();
    Fib.insert (Packetsim.fib sim rc) (Prefix.of_as 1) ~out_port:rc_ra ();
    Fib.insert (Packetsim.fib sim rc) (Prefix.of_as 2) ~out_port:rc_rb ();
    if sharded then Packetsim.set_shards sim [| 1; 2; 0; 1; 2; 0 |];
    let fa = Packetsim.add_udp_flow sim ~src:ha ~dst:hc ~bytes:1_000 ~start:0. () in
    let fb = Packetsim.add_udp_flow sim ~src:hb ~dst:hc ~bytes:1_000 ~start:0. () in
    Packetsim.run sim;
    let finished f = Option.is_some (Packetsim.flow_results sim).(f).Packetsim.finish in
    let c = Packetsim.counters sim in
    ( finished fa,
      finished fb,
      c.Packetsim.delivered_packets,
      c.Packetsim.dropped_queue )
  in
  let serial = run ~sharded:false in
  let sharded = run ~sharded:true in
  Alcotest.(check bool) "sharded tie resolves like serial" true (serial = sharded);
  let a_won, b_won, delivered, dropped = sharded in
  Alcotest.(check bool) "lower source shard wins the tie" true a_won;
  Alcotest.(check bool) "higher source shard loses the queue race" false b_won;
  Alcotest.(check int) "one segment through" 1 delivered;
  Alcotest.(check int) "one segment tail-dropped" 1 dropped

(* Random dumbbells for the 2x2x2 identity gate: n_l + n_r stub ASes
   (one router + one host each) joined through two core routers over a
   narrow bottleneck.  Per-stub delay jitter keeps cross-shard arrivals
   off exact float ties; the tiny core rate forces queue drops. *)
let dumbbell_network ?config ~n_l ~n_r () =
  let sim = Packetsim.create ?config () in
  let local = Engine.Local in
  let down as' = Engine.Ebgp { neighbor_as = as'; rel = Relationship.Customer } in
  let up as' = Engine.Ebgp { neighbor_as = as'; rel = Relationship.Provider } in
  let lcore = Packetsim.add_router sim ~as_id:100 in
  let rcore = Packetsim.add_router sim ~as_id:200 in
  let mk_stub ~core ~core_as i as_id =
    let r = Packetsim.add_router sim ~as_id in
    let h = Packetsim.add_host sim ~addr:(Prefix.host_of_as as_id 1) in
    let _, r_h =
      Packetsim.connect sim ~a:h ~b:r ~kind_ab:local ~kind_ba:local ~rate:1e8 ()
    in
    let delay = 50e-6 *. (1. +. (float_of_int ((7 * i) + 1) /. 13.)) in
    let r_core, core_r =
      Packetsim.connect sim ~a:r ~b:core ~kind_ab:(down core_as)
        ~kind_ba:(up as_id) ~rate:1e8 ~delay ()
    in
    (r, h, r_h, r_core, core_r)
  in
  let left = Array.init n_l (fun i -> mk_stub ~core:lcore ~core_as:100 i (1 + i)) in
  let right =
    Array.init n_r (fun i -> mk_stub ~core:rcore ~core_as:200 (n_l + i) (51 + i))
  in
  let lc_rc, rc_lc =
    Packetsim.connect sim ~a:lcore ~b:rcore ~kind_ab:(down 200) ~kind_ba:(up 100)
      ~rate:20e6 ~delay:200e-6 ()
  in
  (* stub i's own prefix: down its host port from both its router and
     its core; every far-side prefix: toward the core / the bottleneck *)
  Array.iteri
    (fun i (r, _, r_h, r_core, core_r) ->
      Fib.insert (Packetsim.fib sim r) (Prefix.of_as (1 + i)) ~out_port:r_h ();
      Fib.insert (Packetsim.fib sim lcore) (Prefix.of_as (1 + i)) ~out_port:core_r ();
      for j = 0 to n_r - 1 do
        Fib.insert (Packetsim.fib sim r) (Prefix.of_as (51 + j)) ~out_port:r_core ()
      done)
    left;
  Array.iteri
    (fun j (r, _, r_h, r_core, core_r) ->
      Fib.insert (Packetsim.fib sim r) (Prefix.of_as (51 + j)) ~out_port:r_h ();
      Fib.insert (Packetsim.fib sim rcore) (Prefix.of_as (51 + j)) ~out_port:core_r ();
      for i = 0 to n_l - 1 do
        Fib.insert (Packetsim.fib sim r) (Prefix.of_as (1 + i)) ~out_port:r_core ()
      done)
    right;
  for j = 0 to n_r - 1 do
    Fib.insert (Packetsim.fib sim lcore) (Prefix.of_as (51 + j)) ~out_port:lc_rc ()
  done;
  for i = 0 to n_l - 1 do
    Fib.insert (Packetsim.fib sim rcore) (Prefix.of_as (1 + i)) ~out_port:rc_lc ()
  done;
  let hosts arr = Array.map (fun (_, h, _, _, _) -> h) arr in
  (sim, hosts left, hosts right)

let shard_obs_keys =
  [
    "packetsim.delivered";
    "packetsim.dropped.queue";
    "packetsim.dropped.ttl";
    "engine.encap";
    "engine.deflect.ebgp";
    "daemon.alt_changed";
    "daemon.buckets_reset";
  ]

(* One run of a generated workload under (domains, engine, trains);
   returns the full observable fingerprint including Obs counter deltas. *)
let run_dumbbell ~domains ~engine ~trains (n_l, n_r, flow_specs) =
  let config =
    {
      Packetsim.default_config with
      Packetsim.eventq_engine = engine;
      packet_trains = trains;
      domains;
      queue_bits = 100_000;
    }
  in
  let sim, lh, rh = dumbbell_network ~config ~n_l ~n_r () in
  List.iteri
    (fun k (ltr, si, di, kb, start_ms, udp) ->
      let src, dst =
        if ltr then (lh.(si mod n_l), rh.(di mod n_r))
        else (rh.(si mod n_r), lh.(di mod n_l))
      in
      let bytes = 8_000 + (kb * 1_000) in
      let start = float_of_int ((start_ms * 2) + k) /. 1000. in
      if udp then ignore (Packetsim.add_udp_flow sim ~src ~dst ~bytes ~start ())
      else ignore (Packetsim.add_flow sim ~src ~dst ~bytes ~start))
    flow_specs;
  let obs0 = List.map Mifo_util.Obs.counter_value shard_obs_keys in
  Packetsim.run ~until:30. sim;
  let obs_delta =
    List.map2
      (fun k v0 -> Mifo_util.Obs.counter_value k - v0)
      shard_obs_keys obs0
  in
  let series =
    Array.map (fun (_, v) -> Int64.bits_of_float v) (Packetsim.throughput_series sim)
  in
  (pkt_fingerprint sim, obs_delta, series, Packetsim.path_switches sim)

(* The 2x2x2 gate: serial/sharded x heap/wheel x trains on/off, all
   bit-identical (counters, finish times, event counts, goodput series,
   Obs counters) to the serial heap no-trains oracle on random
   dumbbells with drops and UDP blasts. *)
let prop_packetsim_sharded_identical =
  QCheck2.Test.make ~name:"packetsim: sharded x engine x trains bit-identical"
    ~count:6
    QCheck2.Gen.(
      triple (int_range 2 3) (int_range 2 3)
        (list_size (int_range 2 6)
           (tup6 bool (int_bound 3) (int_bound 3) (int_range 12 120)
              (int_bound 10) bool)))
    (fun workload ->
      Mifo_util.Parallel.set_default_jobs 2;
      let n_l, n_r, specs = workload in
      let w = (n_l, n_r, specs) in
      let oracle = run_dumbbell ~domains:1 ~engine:Eventq.Heap ~trains:false w in
      List.for_all
        (fun (domains, engine, trains) ->
          run_dumbbell ~domains ~engine ~trains w = oracle)
        [
          (1, Eventq.Heap, true);
          (1, Eventq.Wheel, false);
          (1, Eventq.Wheel, true);
          (2, Eventq.Heap, false);
          (2, Eventq.Heap, true);
          (2, Eventq.Wheel, false);
          (2, Eventq.Wheel, true);
          (3, Eventq.Wheel, true);
        ])

let () =
  Alcotest.run "mifo_netsim"
    [
      ( "eventq",
        [
          Alcotest.test_case "time order" `Quick test_eventq_order;
          Alcotest.test_case "stable on ties" `Quick test_eventq_stable;
          Alcotest.test_case "rejects bad times" `Quick test_eventq_rejects_bad_time;
          Alcotest.test_case "clear resets the sequence counter" `Quick
            test_eventq_clear_resets_seq;
          Alcotest.test_case "pop_before drives the time cell" `Quick
            test_eventq_pop_before_time_cell;
          QCheck_alcotest.to_alcotest prop_eventq_fifo_ties;
          QCheck_alcotest.to_alcotest prop_eventq_engines_agree;
        ] );
      ( "maxmin",
        [
          Alcotest.test_case "two flows one link" `Quick test_maxmin_two_flows_one_link;
          Alcotest.test_case "classic three flows" `Quick test_maxmin_classic;
          Alcotest.test_case "empty path" `Quick test_maxmin_empty_path;
          Alcotest.test_case "all flows empty" `Quick test_maxmin_all_empty_flows;
          Alcotest.test_case "duplicate links" `Quick test_maxmin_duplicate_links_counted_once;
          Alcotest.test_case "input validation" `Quick test_maxmin_rejects_bad_input;
          QCheck_alcotest.to_alcotest prop_maxmin_feasible;
          QCheck_alcotest.to_alcotest prop_maxmin_bottleneck;
        ] );
      ( "maxmin_solver",
        [
          Alcotest.test_case "input validation and slot lifecycle" `Quick
            test_solver_validation;
          QCheck_alcotest.to_alcotest prop_solver_matches_reference;
          QCheck_alcotest.to_alcotest prop_solver_slot_reuse;
        ] );
      ( "tcp",
        [
          Alcotest.test_case "window pump" `Quick test_tcp_window_pump;
          Alcotest.test_case "slow start" `Quick test_tcp_slow_start_growth;
          Alcotest.test_case "fast retransmit" `Quick test_tcp_fast_retransmit;
          Alcotest.test_case "timeout go-back-n" `Quick test_tcp_timeout_gobackn;
          Alcotest.test_case "completion" `Quick test_tcp_done;
          Alcotest.test_case "rtt estimator" `Quick test_tcp_rtt_estimator;
          Alcotest.test_case "receiver reordering" `Quick test_tcp_receiver_reorder;
          QCheck_alcotest.to_alcotest prop_tcp_sender_invariants;
        ] );
      ( "flowsim",
        [
          Alcotest.test_case "single flow at line rate" `Quick test_flowsim_single_flow;
          Alcotest.test_case "flows share fairly" `Quick test_flowsim_sharing;
          Alcotest.test_case "deterministic" `Quick test_flowsim_deterministic;
          Alcotest.test_case "bgp never offloads" `Quick test_flowsim_bgp_never_offloads;
          Alcotest.test_case "mifo final paths valley-free" `Quick
            test_flowsim_mifo_paths_valley_free;
          Alcotest.test_case "spec validation" `Quick test_flowsim_rejects_bad_specs;
          Alcotest.test_case "link failure: BGP stalls, MIFO survives" `Quick
            test_flowsim_link_failure;
          Alcotest.test_case "failure validation" `Quick test_flowsim_failure_validation;
          Alcotest.test_case "engines bit-identical, skipping real" `Quick
            test_flowsim_engines_bit_identical;
          Alcotest.test_case "series locked to the sampling grid" `Quick
            test_flowsim_series_grid;
        ] );
      ( "packetsim",
        [
          Alcotest.test_case "tcp transfer completes" `Quick test_packetsim_transfer_completes;
          Alcotest.test_case "goodput series conserves bytes" `Quick test_packetsim_goodput_series;
          Alcotest.test_case "two flows share a link" `Quick test_packetsim_two_flows_share;
          Alcotest.test_case "routing loop dies by ttl" `Quick test_packetsim_ttl_on_routing_loop;
          Alcotest.test_case "eventq engines bit-identical end to end" `Quick
            test_packetsim_engines_bit_identical;
          Alcotest.test_case "tunnel transits an intermediate router" `Quick
            test_packetsim_tunnel_transit;
          Alcotest.test_case "ranked chooser drives epoch_ranked" `Quick
            test_packetsim_ranked_chooser;
        ] );
      ( "packetsim_sharded",
        [
          Alcotest.test_case "two-shard line bit-identical" `Quick
            test_packetsim_sharded_line;
          Alcotest.test_case "shard assignment validation" `Quick
            test_packetsim_shard_validation;
          Alcotest.test_case "mailbox drain order on an exact tie" `Quick
            test_packetsim_mailbox_tie_order;
          QCheck_alcotest.to_alcotest prop_packetsim_sharded_identical;
        ] );
    ]
