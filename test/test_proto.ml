(* Tests for the event-driven BGP protocol simulator, the Patricia-trie
   LPM, and the RIB's BGP loop filter. *)

module As_graph = Mifo_topology.As_graph
module Generator = Mifo_topology.Generator
module Routing = Mifo_bgp.Routing
module Bgp_proto = Mifo_bgp.Bgp_proto
module Lpm_trie = Mifo_bgp.Lpm_trie
module Prefix = Mifo_bgp.Prefix
module Prng = Mifo_util.Prng

(* ---------- Bgp_proto ---------- *)

let small_topo =
  lazy
    (Generator.generate
       ~params:
         {
           Generator.default_params with
           Generator.ases = 250;
           tier1 = 5;
           content_providers = 3;
           content_peer_span = (3, 8);
         }
       ~seed:13 ())

let test_proto_converges () =
  let g = (Lazy.force small_topo).Generator.graph in
  let proto = Bgp_proto.create g ~origin:0 in
  let handled = Bgp_proto.run proto in
  Alcotest.(check bool) "converged" true (Bgp_proto.converged proto);
  Alcotest.(check bool) "did real work" true (handled > As_graph.n g)

(* The heart of the matter: the message-passing protocol settles on
   exactly the routes the analytic computation predicts. *)
let test_proto_matches_analytic () =
  let g = (Lazy.force small_topo).Generator.graph in
  List.iter
    (fun origin ->
      let proto = Bgp_proto.create g ~origin in
      ignore (Bgp_proto.run proto);
      let rt = Routing.compute g origin in
      for v = 0 to As_graph.n g - 1 do
        if v <> origin then begin
          Alcotest.(check (option int))
            (Printf.sprintf "next hop at %d toward %d" v origin)
            (Routing.next_hop rt v)
            (Bgp_proto.selected_next_hop proto v);
          match Bgp_proto.selected_path proto v with
          | Some path ->
            Alcotest.(check int) "path length" (Routing.best_len rt v) (List.length path - 1);
            Alcotest.(check bool) "path valley-free" true (As_graph.path_is_valley_free g path)
          | None -> Alcotest.fail "no route after convergence"
        end
      done)
    [ 0; 17; 101; 249 ]

let test_proto_adj_rib_matches_rib () =
  (* the protocol's adj-RIB-in must contain exactly the neighbors the
     analytic RIB says export a route (after its loop filter, modulo
     routes the sender suppresses because our own AS is on them) *)
  let g = (Lazy.force small_topo).Generator.graph in
  let origin = 42 in
  let proto = Bgp_proto.create g ~origin in
  ignore (Bgp_proto.run proto);
  let rt = Routing.compute g origin in
  for v = 0 to As_graph.n g - 1 do
    if v <> origin then begin
      let analytic =
        List.map (fun (e : Routing.rib_entry) -> e.via) (Routing.rib rt v)
        |> List.sort compare
      in
      let protocol = List.map fst (Bgp_proto.adj_rib_in proto v) |> List.sort compare in
      Alcotest.(check (list int))
        (Printf.sprintf "RIB neighbors at %d" v)
        analytic protocol
    end
  done

let test_proto_gadget_messages () =
  let g = Generator.fig2a_gadget () in
  let proto = Bgp_proto.create g ~origin:0 in
  let handled = Bgp_proto.run proto in
  (* 0 announces to 3 neighbors; each peer announces the customer route to
     its two peers (rejected or worse), plus selections: a small, finite
     count *)
  Alcotest.(check bool) "handful of messages" true (handled >= 3 && handled < 30);
  Alcotest.(check int) "origin sent 3" 3 (Bgp_proto.announcements_by proto 0)

let test_proto_deterministic () =
  let g = (Lazy.force small_topo).Generator.graph in
  let run () =
    let proto = Bgp_proto.create g ~origin:7 in
    let n = Bgp_proto.run proto in
    (n, Bgp_proto.messages_sent proto)
  in
  Alcotest.(check (pair int int)) "same message trace" (run ()) (run ())

let test_proto_link_failure_reroutes () =
  (* fail a link, let the churn drain, and check the result equals the
     analytic routing on the graph WITHOUT that link *)
  let g = (Lazy.force small_topo).Generator.graph in
  let origin = 3 in
  let proto = Bgp_proto.create g ~origin in
  ignore (Bgp_proto.run proto);
  (* cut the first hop of some AS's default path *)
  let rt = Routing.compute g origin in
  let path = Array.of_list (Routing.default_path rt 200) in
  let u = path.(0) and v = path.(1) in
  Bgp_proto.fail_link proto u v;
  ignore (Bgp_proto.run proto);
  (* rebuild the graph without that link and compare *)
  let edges =
    As_graph.fold_edges g ~init:[] ~f:(fun acc a b kind ->
        if (a = u && b = v) || (a = v && b = u) then acc else (a, b, kind) :: acc)
  in
  let g' = As_graph.create ~n:(As_graph.n g) ~edges in
  let rt' = Routing.compute g' origin in
  for w = 0 to As_graph.n g - 1 do
    if w <> origin then
      Alcotest.(check (option int))
        (Printf.sprintf "post-failure next hop at %d" w)
        (Routing.next_hop rt' w)
        (Bgp_proto.selected_next_hop proto w)
  done;
  (* and restoring the link recovers the original routing *)
  Bgp_proto.restore_link proto u v;
  ignore (Bgp_proto.run proto);
  for w = 0 to As_graph.n g - 1 do
    if w <> origin then
      Alcotest.(check (option int))
        (Printf.sprintf "post-restore next hop at %d" w)
        (Routing.next_hop rt w)
        (Bgp_proto.selected_next_hop proto w)
  done

let test_proto_failure_validation () =
  let g = Generator.fig2a_gadget () in
  let proto = Bgp_proto.create g ~origin:0 in
  ignore (Bgp_proto.run proto);
  Alcotest.(check bool) "non-adjacent pair rejected" true
    (match Bgp_proto.fail_link proto 1 1 with
     | exception Invalid_argument _ -> true
     | _ -> false);
  (* failing a gadget spoke forces the peer route *)
  Bgp_proto.fail_link proto 1 0;
  ignore (Bgp_proto.run proto);
  (match Bgp_proto.selected_next_hop proto 1 with
   | Some nh -> Alcotest.(check int) "reroutes via the lower peer" 2 nh
   | None -> Alcotest.fail "AS 1 lost all routes");
  Alcotest.(check int) "nobody black-holed after convergence" 0
    (Bgp_proto.unreachable_count proto)

(* ---------- Prefix_table ---------- *)

let test_prefix_table () =
  let rng = Prng.create ~seed:77 () in
  let table = Mifo_bgp.Prefix_table.generate rng ~size:20_000 in
  Alcotest.(check int) "size" 20_000 (Array.length table);
  (* distinct prefixes *)
  let seen = Hashtbl.create 20_000 in
  Array.iter
    (fun (p, _) ->
      let key = (p.Prefix.network, p.Prefix.length) in
      Alcotest.(check bool) "distinct" false (Hashtbl.mem seen key);
      Hashtbl.add seen key ())
    table;
  (* /24 share near the configured 55% *)
  let slash24 =
    Array.fold_left
      (fun acc (p, _) -> if p.Prefix.length = 24 then acc + 1 else acc)
      0 table
  in
  let share = float_of_int slash24 /. 20_000. in
  Alcotest.(check bool)
    (Printf.sprintf "/24 share %.3f within 0.52..0.58" share)
    true
    (share > 0.52 && share < 0.58);
  (* trie loads and answers *)
  let trie = Mifo_bgp.Prefix_table.load_trie table in
  Alcotest.(check int) "trie cardinal" 20_000 (Lpm_trie.cardinal trie);
  let p0, _ = table.(0) in
  (* a longer prefix may shadow p0's own value; matching anything is enough *)
  Alcotest.(check bool) "own network matches" true
    (Lpm_trie.lookup p0.Prefix.network trie <> None)

(* ---------- RIB loop filter ---------- *)

(* Diamond: AS 1 must NOT see a route via its provider 3, because 3's
   selected path to 0 runs through 1 itself. *)
let test_rib_loop_filter () =
  let g =
    As_graph.create ~n:6
      ~edges:
        [
          (1, 0, As_graph.Provider_customer);
          (2, 0, As_graph.Provider_customer);
          (3, 1, As_graph.Provider_customer);
          (3, 2, As_graph.Provider_customer);
          (3, 4, As_graph.Provider_customer);
          (3, 5, As_graph.Provider_customer);
        ]
  in
  let rt = Routing.compute g 0 in
  (* 3 ties between customers 1 and 2; lowest id wins: via 1 *)
  Alcotest.(check (option int)) "3 routes via 1" (Some 1) (Routing.next_hop rt 3);
  let rib_at v = List.map (fun (e : Routing.rib_entry) -> e.via) (Routing.rib rt v) in
  Alcotest.(check (list int)) "1's RIB: only the direct route (3's path loops back)"
    [ 0 ] (rib_at 1);
  Alcotest.(check (list int)) "2's RIB keeps the provider alternative" [ 0; 3 ] (rib_at 2);
  Alcotest.(check bool) "on_selected_path sees 1 on 3's path" true
    (Routing.on_selected_path rt ~node:3 1);
  Alcotest.(check bool) "2 is not on 3's path" false (Routing.on_selected_path rt ~node:3 2)

(* ---------- Lpm_trie ---------- *)

let test_trie_basic () =
  let t =
    Lpm_trie.of_list
      [
        (Prefix.of_string "10.0.0.0/8", "eight");
        (Prefix.of_string "10.1.0.0/16", "sixteen");
        (Prefix.of_string "10.1.2.0/24", "twentyfour");
      ]
  in
  let lookup addr =
    match Lpm_trie.lookup (Prefix.addr_of_string addr) t with
    | Some (_, v) -> v
    | None -> "none"
  in
  Alcotest.(check string) "/24" "twentyfour" (lookup "10.1.2.9");
  Alcotest.(check string) "/16" "sixteen" (lookup "10.1.3.9");
  Alcotest.(check string) "/8" "eight" (lookup "10.9.9.9");
  Alcotest.(check string) "miss" "none" (lookup "11.0.0.1");
  Alcotest.(check int) "cardinal" 3 (Lpm_trie.cardinal t)

let test_trie_default_route () =
  let t = Lpm_trie.of_list [ (Prefix.of_string "0.0.0.0/0", "default") ] in
  match Lpm_trie.lookup (Prefix.addr_of_string "203.0.113.7") t with
  | Some (p, v) ->
    Alcotest.(check string) "default matches" "default" v;
    Alcotest.(check int) "length 0" 0 p.Prefix.length
  | None -> Alcotest.fail "default route must match everything"

let test_trie_remove_and_exact () =
  let p16 = Prefix.of_string "10.1.0.0/16" and p24 = Prefix.of_string "10.1.2.0/24" in
  let t = Lpm_trie.of_list [ (p16, 16); (p24, 24) ] in
  Alcotest.(check (option int)) "exact /24" (Some 24) (Lpm_trie.find_exact p24 t);
  let t = Lpm_trie.remove p24 t in
  Alcotest.(check (option int)) "removed" None (Lpm_trie.find_exact p24 t);
  (match Lpm_trie.lookup (Prefix.addr_of_string "10.1.2.9") t with
   | Some (_, v) -> Alcotest.(check int) "falls back to /16" 16 v
   | None -> Alcotest.fail "lost the /16");
  Alcotest.(check int) "cardinal" 1 (Lpm_trie.cardinal t);
  Alcotest.(check bool) "removing everything empties" true
    (Lpm_trie.is_empty (Lpm_trie.remove p16 t))

let test_trie_replace () =
  let p = Prefix.of_string "10.0.0.0/8" in
  let t = Lpm_trie.add p 2 (Lpm_trie.add p 1 Lpm_trie.empty) in
  Alcotest.(check (option int)) "replaced" (Some 2) (Lpm_trie.find_exact p t);
  Alcotest.(check int) "no duplicate" 1 (Lpm_trie.cardinal t)

let test_trie_fold_order () =
  let ps = [ "10.1.2.0/24"; "10.0.0.0/8"; "192.168.0.0/16" ] in
  let t = Lpm_trie.of_list (List.map (fun s -> (Prefix.of_string s, s)) ps) in
  let listed = List.map (fun (p, _) -> Prefix.to_string p) (Lpm_trie.to_list t) in
  Alcotest.(check (list string)) "ascending network order"
    [ "10.0.0.0/8"; "10.1.2.0/24"; "192.168.0.0/16" ]
    listed

(* Agreement with the production FIB on random tables. *)
let prop_trie_agrees_with_fib =
  QCheck2.Test.make ~name:"trie and per-length FIB agree on random tables" ~count:60
    QCheck2.Gen.(
      pair
        (list_size (int_range 1 40)
           (pair (int_range 0 0xFFFF) (int_range 8 32)))
        (list_size (int_range 1 60) (int_range 0 0xFFFF)))
    (fun (entries, queries) ->
      let fib = Mifo_core.Fib.create () in
      let trie = ref Lpm_trie.empty in
      List.iteri
        (fun i (asn, len) ->
          let prefix = Prefix.make (Prefix.host_of_as asn 1) len in
          Mifo_core.Fib.insert fib prefix ~out_port:i ();
          trie := Lpm_trie.add prefix i !trie)
        entries;
      List.for_all
        (fun asn ->
          let addr = Prefix.host_of_as asn 2 in
          let from_fib =
            match Mifo_core.Fib.lookup fib addr with
            | Some e -> Some (Mifo_core.Fib.out_port e)
            | None -> None
          in
          let from_trie =
            match Lpm_trie.lookup addr !trie with Some (_, v) -> Some v | None -> None
          in
          (* ports may differ when the same prefix was inserted twice with
             different ports (replacement order is identical), so compare
             the matched value directly *)
          from_fib = from_trie)
        queries)

(* ---------- Csv ---------- *)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Mifo_util.Csv.escape "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Mifo_util.Csv.escape "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Mifo_util.Csv.escape "a\"b")

let test_csv_series () =
  let out =
    Mifo_util.Csv.of_series ~x_label:"x" ~columns:[ "y1"; "y2" ]
      ~rows:[ (1., [ 2.; 3. ]); (4., [ 5.; 6. ]) ]
  in
  Alcotest.(check string) "series" "x,y1,y2\n1,2,3\n4,5,6\n" out

let () =
  Alcotest.run "mifo_proto"
    [
      ( "bgp_proto",
        [
          Alcotest.test_case "converges" `Quick test_proto_converges;
          Alcotest.test_case "matches the analytic computation" `Slow
            test_proto_matches_analytic;
          Alcotest.test_case "adj-RIB-in matches the analytic RIB" `Slow
            test_proto_adj_rib_matches_rib;
          Alcotest.test_case "gadget message count" `Quick test_proto_gadget_messages;
          Alcotest.test_case "deterministic" `Quick test_proto_deterministic;
          Alcotest.test_case "link failure reroutes correctly" `Slow
            test_proto_link_failure_reroutes;
          Alcotest.test_case "failure API" `Quick test_proto_failure_validation;
        ] );
      ("prefix_table", [ Alcotest.test_case "realistic table" `Quick test_prefix_table ]);
      ("loop filter", [ Alcotest.test_case "diamond" `Quick test_rib_loop_filter ]);
      ( "lpm_trie",
        [
          Alcotest.test_case "longest match" `Quick test_trie_basic;
          Alcotest.test_case "default route" `Quick test_trie_default_route;
          Alcotest.test_case "remove and exact" `Quick test_trie_remove_and_exact;
          Alcotest.test_case "replace" `Quick test_trie_replace;
          Alcotest.test_case "fold order" `Quick test_trie_fold_order;
          QCheck_alcotest.to_alcotest prop_trie_agrees_with_fib;
        ] );
      ( "csv",
        [
          Alcotest.test_case "escaping" `Quick test_csv_escaping;
          Alcotest.test_case "series" `Quick test_csv_series;
        ] );
    ]
