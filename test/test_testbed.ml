(* Tests for the testbed emulation (Section V / Figs. 11-12), kept small
   enough for `dune runtest`: short flow chains, 2 MB flows. *)

module Testbed = Mifo_testbed.Testbed
module Packetsim = Mifo_netsim.Packetsim
module Fib = Mifo_core.Fib
module Prefix = Mifo_bgp.Prefix

let small_config =
  { Testbed.default_config with Testbed.flows_per_source = 3; flow_bytes = 2_000_000 }

let medium_config =
  { Testbed.default_config with Testbed.flows_per_source = 4; flow_bytes = 10_000_000 }

let test_build_structure () =
  let net = Testbed.build small_config Testbed.Mifo_routing in
  (* Rd's FIB toward AS5 must have the iBGP alternative installed *)
  match Fib.find (Packetsim.fib net.Testbed.sim net.Testbed.rd) (Prefix.of_as 5) with
  | Some entry -> Alcotest.(check bool) "alt installed" true (Fib.alt_port entry <> None)
  | None -> Alcotest.fail "Rd has no route to AS5"

let test_build_bgp_has_no_alt () =
  let net = Testbed.build small_config Testbed.Bgp_routing in
  match Fib.find (Packetsim.fib net.Testbed.sim net.Testbed.rd) (Prefix.of_as 5) with
  | Some entry -> Alcotest.(check bool) "no alt under BGP" true (Fib.alt_port entry = None)
  | None -> Alcotest.fail "Rd has no route to AS5"

let test_bgp_run_completes () =
  let r = Testbed.run ~config:small_config Testbed.Bgp_routing in
  Alcotest.(check int) "all flows finish" 6 (Array.length r.Testbed.fct);
  Alcotest.(check bool) "sane makespan" true (r.Testbed.makespan > 0.05 && r.Testbed.makespan < 10.);
  (* the shared bottleneck caps BGP near 1 Gbps *)
  Alcotest.(check bool) "bottlenecked aggregate" true (r.Testbed.mean_aggregate < 1.1e9);
  Alcotest.(check int) "nothing tunneled under BGP" 0
    r.Testbed.counters.Packetsim.encapsulated

let test_mifo_run_uses_alternative () =
  let r = Testbed.run ~config:small_config Testbed.Mifo_routing in
  Alcotest.(check int) "all flows finish" 6 (Array.length r.Testbed.fct);
  Alcotest.(check bool) "packets tunneled over iBGP" true
    (r.Testbed.counters.Packetsim.encapsulated > 0);
  Alcotest.(check int) "no valley drops in the testbed" 0
    r.Testbed.counters.Packetsim.dropped_valley

let test_mifo_beats_bgp () =
  (* with longer flows the adaptation amortizes: MIFO must deliver clearly
     higher aggregate throughput (paper: +81% with 100 MB flows) *)
  let bgp = Testbed.run ~config:medium_config Testbed.Bgp_routing in
  let mifo = Testbed.run ~config:medium_config Testbed.Mifo_routing in
  let gain = mifo.Testbed.mean_aggregate /. bgp.Testbed.mean_aggregate in
  Alcotest.(check bool)
    (Printf.sprintf "MIFO/BGP aggregate ratio %.2f > 1.1" gain)
    true (gain > 1.1);
  Alcotest.(check bool) "MIFO finishes sooner" true
    (mifo.Testbed.makespan < bgp.Testbed.makespan)

let test_deterministic () =
  let a = Testbed.run ~config:small_config Testbed.Mifo_routing in
  let b = Testbed.run ~config:small_config Testbed.Mifo_routing in
  Alcotest.(check (array (float 1e-12))) "same FCTs" a.Testbed.fct b.Testbed.fct

let test_encap_ablation_breaks_cycling () =
  (* without IP-in-IP, deflected packets ping-pong between Rd and Ra and
     die by TTL - the Fig. 2(b) failure mode *)
  let config =
    {
      small_config with
      Testbed.sim = { small_config.Testbed.sim with Packetsim.ibgp_encap = false };
    }
  in
  let r = Testbed.run ~config Testbed.Mifo_routing in
  Alcotest.(check bool) "TTL deaths without encapsulation" true
    (r.Testbed.counters.Packetsim.dropped_ttl > 0)

let () =
  Alcotest.run "mifo_testbed"
    [
      ( "build",
        [
          Alcotest.test_case "MIFO wiring" `Quick test_build_structure;
          Alcotest.test_case "BGP wiring" `Quick test_build_bgp_has_no_alt;
        ] );
      ( "runs",
        [
          Alcotest.test_case "BGP completes" `Quick test_bgp_run_completes;
          Alcotest.test_case "MIFO tunnels over iBGP" `Quick test_mifo_run_uses_alternative;
          Alcotest.test_case "MIFO beats BGP" `Slow test_mifo_beats_bgp;
          Alcotest.test_case "deterministic" `Quick test_deterministic;
          Alcotest.test_case "encap ablation: cycling dies by TTL" `Quick
            test_encap_ablation_breaks_cycling;
        ] );
    ]
