(* Unit and property tests for Mifo_topology: the relationship algebra,
   the AS graph, the generator and as-rel IO. *)

module Relationship = Mifo_topology.Relationship
module As_graph = Mifo_topology.As_graph
module Generator = Mifo_topology.Generator
module As_rel_io = Mifo_topology.As_rel_io
module Topo_stats = Mifo_topology.Topo_stats
module Union_find = Mifo_util.Union_find

(* ---------- Relationship ---------- *)

let test_inverse () =
  Alcotest.(check bool) "customer<->provider" true
    (Relationship.equal (Relationship.inverse Relationship.Customer) Relationship.Provider);
  Alcotest.(check bool) "provider<->customer" true
    (Relationship.equal (Relationship.inverse Relationship.Provider) Relationship.Customer);
  Alcotest.(check bool) "peer<->peer" true
    (Relationship.equal (Relationship.inverse Relationship.Peer) Relationship.Peer)

let test_preference () =
  Alcotest.(check (list int)) "customer < peer < provider"
    [ 0; 1; 2 ]
    (List.map Relationship.preference_rank
       [ Relationship.Customer; Relationship.Peer; Relationship.Provider ])

(* Eq. 3: transit allowed iff upstream is customer OR downstream is customer. *)
let test_transit_rule () =
  let open Relationship in
  let cases =
    [
      (Customer, Customer, true); (Customer, Peer, true); (Customer, Provider, true);
      (Peer, Customer, true); (Peer, Peer, false); (Peer, Provider, false);
      (Provider, Customer, true); (Provider, Peer, false); (Provider, Provider, false);
    ]
  in
  List.iter
    (fun (up, down, expected) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s -> %s" (to_string up) (to_string down))
        expected
        (transit_allowed ~upstream:up ~downstream:down))
    cases

(* Gao-Rexford export policy table. *)
let test_exports_to () =
  let open Relationship in
  Alcotest.(check bool) "customer routes to everyone" true
    (List.for_all
       (fun nb -> exports_to ~route_learned_from:Customer ~neighbor:nb)
       [ Customer; Peer; Provider ]);
  List.iter
    (fun learned ->
      Alcotest.(check bool) "peer/provider routes only to customers" true
        (exports_to ~route_learned_from:learned ~neighbor:Customer);
      Alcotest.(check bool) "not to peers" false
        (exports_to ~route_learned_from:learned ~neighbor:Peer);
      Alcotest.(check bool) "not to providers" false
        (exports_to ~route_learned_from:learned ~neighbor:Provider))
    [ Peer; Provider ]

let test_valley_free_shapes () =
  let open Relationship in
  Alcotest.(check bool) "up up down down" true (valley_free [ Up; Up; Down; Down ]);
  Alcotest.(check bool) "up flat down" true (valley_free [ Up; Flat; Down ]);
  Alcotest.(check bool) "flat only" true (valley_free [ Flat ]);
  Alcotest.(check bool) "empty" true (valley_free []);
  Alcotest.(check bool) "down up is a valley" false (valley_free [ Down; Up ]);
  Alcotest.(check bool) "two flats" false (valley_free [ Flat; Flat ]);
  Alcotest.(check bool) "flat then up" false (valley_free [ Up; Flat; Up ]);
  Alcotest.(check bool) "down flat" false (valley_free [ Down; Flat ])

(* ---------- As_graph ---------- *)

(* 0 is the customer of 1 and 2; 1-2 peer; 1 is customer of 3. *)
let small_graph () =
  As_graph.create ~n:4
    ~edges:
      [
        (1, 0, As_graph.Provider_customer);
        (2, 0, As_graph.Provider_customer);
        (1, 2, As_graph.Peer_peer);
        (3, 1, As_graph.Provider_customer);
      ]

let test_graph_basic () =
  let g = small_graph () in
  Alcotest.(check int) "n" 4 (As_graph.n g);
  Alcotest.(check int) "edges" 4 (As_graph.edge_count g);
  Alcotest.(check int) "pc" 3 (As_graph.pc_edge_count g);
  Alcotest.(check int) "peer" 1 (As_graph.peer_edge_count g);
  Alcotest.(check bool) "0's view of 1 is provider" true
    (Relationship.equal (As_graph.rel_exn g 0 1) Relationship.Provider);
  Alcotest.(check bool) "1's view of 0 is customer" true
    (Relationship.equal (As_graph.rel_exn g 1 0) Relationship.Customer);
  Alcotest.(check bool) "1-2 peer" true
    (Relationship.equal (As_graph.rel_exn g 1 2) Relationship.Peer);
  Alcotest.(check bool) "non-adjacent" true (As_graph.rel g 0 3 = None);
  Alcotest.(check int) "degree of 1" 3 (As_graph.degree g 1);
  Alcotest.(check (array int)) "customers of 1" [| 0 |] (As_graph.customers g 1);
  Alcotest.(check (array int)) "providers of 0" [| 1; 2 |] (As_graph.providers g 0);
  Alcotest.(check bool) "0 is stub" true (As_graph.is_stub g 0);
  Alcotest.(check bool) "1 is not stub" false (As_graph.is_stub g 1)

let test_graph_levels () =
  let g = small_graph () in
  Alcotest.(check int) "3 is top" 0 (As_graph.level g 3);
  Alcotest.(check int) "2 is top" 0 (As_graph.level g 2);
  Alcotest.(check int) "1 below 3" 1 (As_graph.level g 1);
  Alcotest.(check int) "0 below 1" 2 (As_graph.level g 0);
  let order = As_graph.topological_order g in
  let pos = Array.make 4 0 in
  Array.iteri (fun i v -> pos.(v) <- i) order;
  Alcotest.(check bool) "3 before 1" true (pos.(3) < pos.(1));
  Alcotest.(check bool) "1 before 0" true (pos.(1) < pos.(0))

let test_graph_rejects_cycle () =
  Alcotest.check_raises "provider cycle" As_graph.Cyclic_provider_graph (fun () ->
      ignore
        (As_graph.create ~n:3
           ~edges:
             [
               (0, 1, As_graph.Provider_customer);
               (1, 2, As_graph.Provider_customer);
               (2, 0, As_graph.Provider_customer);
             ]))

let test_graph_rejects_duplicate () =
  Alcotest.check_raises "duplicate" (As_graph.Duplicate_edge (1, 0)) (fun () ->
      ignore
        (As_graph.create ~n:2
           ~edges:[ (0, 1, As_graph.Provider_customer); (1, 0, As_graph.Peer_peer) ]))

let test_graph_rejects_self_loop () =
  Alcotest.check_raises "self loop" (Invalid_argument "As_graph.create: self-loop")
    (fun () -> ignore (As_graph.create ~n:2 ~edges:[ (1, 1, As_graph.Peer_peer) ]))

let test_fold_edges () =
  let g = small_graph () in
  let count = As_graph.fold_edges g ~init:0 ~f:(fun acc _ _ _ -> acc + 1) in
  Alcotest.(check int) "each link once" 4 count;
  let pc =
    As_graph.fold_edges g ~init:0 ~f:(fun acc _ _ -> function
      | As_graph.Provider_customer -> acc + 1
      | As_graph.Peer_peer -> acc)
  in
  Alcotest.(check int) "pc links" 3 pc

let test_path_valley_free () =
  let g = small_graph () in
  Alcotest.(check bool) "0 -> 1 -> 3 pure uphill" true
    (As_graph.path_is_valley_free g [ 0; 1; 3 ]);
  Alcotest.(check bool) "3 -> 1 -> 0 pure downhill" true
    (As_graph.path_is_valley_free g [ 3; 1; 0 ]);
  Alcotest.(check bool) "0 up 1 peer 2 down 0" true
    (As_graph.path_is_valley_free g [ 0; 1; 2; 0 ]);
  Alcotest.(check bool) "1 peer 2 down 0 up 1 is a valley" false
    (As_graph.path_is_valley_free g [ 1; 2; 0; 1 ])

(* ---------- Generator ---------- *)

let generated = lazy (Generator.generate ~seed:99 ())

let test_generator_deterministic () =
  let a = Generator.generate ~seed:4 () and b = Generator.generate ~seed:4 () in
  let sa = Topo_stats.compute a.Generator.graph and sb = Topo_stats.compute b.Generator.graph in
  Alcotest.(check int) "same links" sa.Topo_stats.links sb.Topo_stats.links;
  Alcotest.(check int) "same peering" sa.Topo_stats.peering_links sb.Topo_stats.peering_links

let test_generator_connected () =
  let t = Lazy.force generated in
  let g = t.Generator.graph in
  let uf = Union_find.create (As_graph.n g) in
  ignore (As_graph.fold_edges g ~init:() ~f:(fun () u v _ -> ignore (Union_find.union uf u v)));
  Alcotest.(check int) "one component" 1 (Union_find.count_sets uf)

let test_generator_ratio () =
  let t = Lazy.force generated in
  let stats = Topo_stats.compute t.Generator.graph in
  Alcotest.(check bool)
    (Printf.sprintf "P/C fraction %.2f within 0.64..0.74" stats.Topo_stats.pc_fraction)
    true
    (stats.Topo_stats.pc_fraction > 0.64 && stats.Topo_stats.pc_fraction < 0.74)

let test_generator_roles_consistent () =
  let t = Lazy.force generated in
  let g = t.Generator.graph in
  Array.iteri
    (fun v role ->
      match role with
      | Generator.Tier1 ->
        Alcotest.(check int) "tier1 has no providers" 0 (Array.length (As_graph.providers g v))
      | Generator.Transit | Generator.Stub ->
        Alcotest.(check bool) "non-tier1 has a provider" true
          (Array.length (As_graph.providers g v) > 0))
    t.Generator.roles

let test_generator_content_are_stubs () =
  let t = Lazy.force generated in
  Array.iter
    (fun cp ->
      Alcotest.(check bool) "content provider is a stub" true
        (t.Generator.roles.(cp) = Generator.Stub))
    t.Generator.content

let test_generator_validates () =
  Alcotest.check_raises "bad tier1" (Invalid_argument "Generator: bad tier1 size")
    (fun () ->
      ignore
        (Generator.generate
           ~params:{ Generator.default_params with Generator.tier1 = 1 }
           ~seed:1 ()))

let prop_generator_valid =
  QCheck2.Test.make ~name:"generated graphs are valid at random sizes" ~count:8
    QCheck2.Gen.(pair (int_range 20 300) (int_range 0 1000))
    (fun (ases, seed) ->
      let params =
        {
          Generator.default_params with
          Generator.ases;
          tier1 = 4;
          content_providers = 2;
          content_peer_span = (2, 6);
        }
      in
      let t = Generator.generate ~params ~seed () in
      let g = t.Generator.graph in
      (* create already validates the DAG; check connectivity *)
      let uf = Union_find.create (As_graph.n g) in
      ignore
        (As_graph.fold_edges g ~init:() ~f:(fun () u v _ -> ignore (Union_find.union uf u v)));
      Union_find.count_sets uf = 1)

let test_fig2a_gadget () =
  let g = Generator.fig2a_gadget () in
  Alcotest.(check int) "4 nodes" 4 (As_graph.n g);
  Alcotest.(check int) "3 peer links" 3 (As_graph.peer_edge_count g);
  Alcotest.(check int) "0 has 3 providers" 3 (Array.length (As_graph.providers g 0))

(* ---------- As_rel_io ---------- *)

let test_as_rel_roundtrip () =
  let t = Lazy.force generated in
  let g = t.Generator.graph in
  let text = As_rel_io.to_string g in
  let loaded = As_rel_io.parse_string text in
  let s1 = Topo_stats.compute g and s2 = Topo_stats.compute loaded.As_rel_io.graph in
  Alcotest.(check int) "nodes" s1.Topo_stats.nodes s2.Topo_stats.nodes;
  Alcotest.(check int) "links" s1.Topo_stats.links s2.Topo_stats.links;
  Alcotest.(check int) "pc" s1.Topo_stats.pc_links s2.Topo_stats.pc_links;
  Alcotest.(check int) "peering" s1.Topo_stats.peering_links s2.Topo_stats.peering_links

let test_as_rel_parse () =
  let loaded = As_rel_io.parse_string "# comment\n100|200|-1\n200|300|0\n" in
  let g = loaded.As_rel_io.graph in
  Alcotest.(check int) "3 nodes" 3 (As_graph.n g);
  Alcotest.(check int) "1 pc" 1 (As_graph.pc_edge_count g);
  Alcotest.(check int) "1 peer" 1 (As_graph.peer_edge_count g);
  (* AS numbers preserved *)
  Alcotest.(check (array int)) "as numbers" [| 100; 200; 300 |] loaded.As_rel_io.as_number

let test_as_rel_bad_input () =
  let raises_parse_error text =
    match As_rel_io.parse_string text with
    | exception As_rel_io.Parse_error _ -> true
    | _ -> false
  in
  Alcotest.(check bool) "bad relationship" true (raises_parse_error "1|2|7\n");
  Alcotest.(check bool) "bad AS number" true (raises_parse_error "x|2|0\n");
  Alcotest.(check bool) "bad format" true (raises_parse_error "1,2,0\n");
  Alcotest.(check bool) "empty" true (raises_parse_error "# nothing\n")

let test_degree_distribution () =
  let t = Lazy.force generated in
  let g = t.Generator.graph in
  let ccdf = Topo_stats.degree_ccdf g in
  (* a proper CCDF: starts at 1, decreases, stays positive *)
  Alcotest.(check (float 1e-9)) "starts at 1" 1.0 (snd ccdf.(0));
  for i = 1 to Array.length ccdf - 1 do
    Alcotest.(check bool) "monotone" true (snd ccdf.(i) <= snd ccdf.(i - 1));
    Alcotest.(check bool) "positive" true (snd ccdf.(i) > 0.)
  done;
  let slope = Topo_stats.powerlaw_exponent g in
  Alcotest.(check bool)
    (Printf.sprintf "heavy tail: slope %.2f in -2.5..-0.5" slope)
    true
    (slope < -0.5 && slope > -2.5)

let test_topo_stats () =
  let g = small_graph () in
  let s = Topo_stats.compute g in
  Alcotest.(check int) "nodes" 4 s.Topo_stats.nodes;
  Alcotest.(check int) "links" 4 s.Topo_stats.links;
  Alcotest.(check int) "max degree" 3 s.Topo_stats.max_degree;
  Alcotest.(check bool) "mean degree" true (abs_float (s.Topo_stats.mean_degree -. 2.0) < 1e-9)

(* ---------- Partition ---------- *)

module Partition = Mifo_topology.Partition

(* Two 4-cliques of fast links joined by one slow bridge: the only
   sensible 2-way split cuts exactly the bridge. *)
let two_clique_edges () =
  let fast = 1e-5 and slow = 1e-3 in
  let clique base =
    let acc = ref [] in
    for u = 0 to 3 do
      for v = u + 1 to 3 do
        acc := (base + u, base + v, fast) :: !acc
      done
    done;
    !acc
  in
  Array.of_list (((0, 4, slow) :: clique 0) @ clique 4)

let test_partition_two_cliques () =
  let edges = two_clique_edges () in
  let weights = Array.make 8 1 in
  let assign = Partition.partition ~parts:2 ~weights ~edges in
  let st = Partition.stats ~weights ~edges ~assign in
  Alcotest.(check int) "both parts used" 2 st.Partition.parts;
  Alcotest.(check int) "only the bridge is cut" 1 st.Partition.cut_edges;
  Alcotest.(check bool) "cut latency is the slow bridge" true
    (abs_float (st.Partition.min_cut_latency -. 1e-3) < 1e-12);
  Alcotest.(check int) "balanced heavy side" 4 st.Partition.heaviest;
  Alcotest.(check int) "balanced light side" 4 st.Partition.lightest;
  (* cliques stay whole *)
  for u = 1 to 3 do
    Alcotest.(check int) "left clique together" assign.(0) assign.(u);
    Alcotest.(check int) "right clique together" assign.(4) assign.(4 + u)
  done

let test_partition_deterministic_and_balanced () =
  let n = 60 in
  (* ring with chords; weights 1..3 repeating *)
  let edges =
    Array.init (2 * n) (fun i ->
        if i < n then (i, (i + 1) mod n, 1e-4 *. float_of_int (1 + (i mod 7)))
        else
          let u = i - n in
          (u, (u + 13) mod n, 2e-3))
  in
  let weights = Array.init n (fun i -> 1 + (i mod 3)) in
  let a1 = Partition.partition ~parts:4 ~weights ~edges in
  let a2 = Partition.partition ~parts:4 ~weights ~edges in
  Alcotest.(check bool) "deterministic" true (a1 = a2);
  let st = Partition.stats ~weights ~edges ~assign:a1 in
  Alcotest.(check int) "all parts non-empty" 4 st.Partition.parts;
  let total = Array.fold_left ( + ) 0 weights in
  let max_w = 3 in
  Alcotest.(check bool) "no part above target + max weight" true
    (st.Partition.heaviest <= ((total + 3) / 4) + max_w);
  Alcotest.(check bool) "cut latency positive" true (st.Partition.min_cut_latency > 0.)

let test_partition_degenerate () =
  let weights = [| 2; 1; 5 |] in
  let edges = [| (0, 1, 1e-3); (1, 2, 1e-3) |] in
  Alcotest.(check (array int)) "parts=1 collapses" [| 0; 0; 0 |]
    (Partition.partition ~parts:1 ~weights ~edges);
  let spread = Partition.partition ~parts:3 ~weights ~edges in
  Alcotest.(check (array int)) "n = parts spreads round-robin" [| 0; 1; 2 |] spread;
  let wide = Partition.partition ~parts:5 ~weights ~edges in
  Alcotest.(check bool) "n < parts keeps ids in range" true
    (Array.for_all (fun p -> p >= 0 && p < 5) wide);
  Alcotest.check_raises "parts < 1 rejected"
    (Invalid_argument "Partition.partition: parts must be >= 1") (fun () ->
      ignore (Partition.partition ~parts:0 ~weights ~edges));
  Alcotest.check_raises "edge endpoint out of range"
    (Invalid_argument "Partition.partition: edge endpoint out of range") (fun () ->
      ignore (Partition.partition ~parts:2 ~weights ~edges:[| (0, 9, 1.) |]));
  (* isolated nodes, no edges: still a valid balanced assignment *)
  let lonely = Partition.partition ~parts:2 ~weights:(Array.make 10 1) ~edges:[||] in
  let st = Partition.stats ~weights:(Array.make 10 1) ~edges:[||] ~assign:lonely in
  Alcotest.(check int) "isolated: both parts used" 2 st.Partition.parts;
  Alcotest.(check bool) "isolated: nothing cut -> infinite lookahead" true
    (st.Partition.cut_edges = 0 && st.Partition.min_cut_latency = infinity)

let () =
  Alcotest.run "mifo_topology"
    [
      ( "relationship",
        [
          Alcotest.test_case "inverse" `Quick test_inverse;
          Alcotest.test_case "preference ranks" `Quick test_preference;
          Alcotest.test_case "Eq.3 transit rule" `Quick test_transit_rule;
          Alcotest.test_case "export policy" `Quick test_exports_to;
          Alcotest.test_case "valley-free shapes" `Quick test_valley_free_shapes;
        ] );
      ( "as_graph",
        [
          Alcotest.test_case "adjacency and relationships" `Quick test_graph_basic;
          Alcotest.test_case "levels and topological order" `Quick test_graph_levels;
          Alcotest.test_case "rejects provider cycles" `Quick test_graph_rejects_cycle;
          Alcotest.test_case "rejects duplicate links" `Quick test_graph_rejects_duplicate;
          Alcotest.test_case "rejects self-loops" `Quick test_graph_rejects_self_loop;
          Alcotest.test_case "fold_edges" `Quick test_fold_edges;
          Alcotest.test_case "path valley-freeness" `Quick test_path_valley_free;
        ] );
      ( "generator",
        [
          Alcotest.test_case "deterministic in seed" `Quick test_generator_deterministic;
          Alcotest.test_case "connected" `Quick test_generator_connected;
          Alcotest.test_case "P/C : peering ratio" `Quick test_generator_ratio;
          Alcotest.test_case "roles consistent" `Quick test_generator_roles_consistent;
          Alcotest.test_case "content providers are stubs" `Quick test_generator_content_are_stubs;
          Alcotest.test_case "parameter validation" `Quick test_generator_validates;
          Alcotest.test_case "fig2a gadget" `Quick test_fig2a_gadget;
          QCheck_alcotest.to_alcotest prop_generator_valid;
        ] );
      ( "as_rel_io",
        [
          Alcotest.test_case "roundtrip" `Quick test_as_rel_roundtrip;
          Alcotest.test_case "parse" `Quick test_as_rel_parse;
          Alcotest.test_case "bad input" `Quick test_as_rel_bad_input;
        ] );
      ( "topo_stats",
        [
          Alcotest.test_case "small graph" `Quick test_topo_stats;
          Alcotest.test_case "degree distribution" `Quick test_degree_distribution;
        ] );
      ( "partition",
        [
          Alcotest.test_case "two cliques cut at the slow bridge" `Quick
            test_partition_two_cliques;
          Alcotest.test_case "deterministic and balanced" `Quick
            test_partition_deterministic_and_balanced;
          Alcotest.test_case "degenerate shapes and validation" `Quick
            test_partition_degenerate;
        ] );
    ]
