(* Unit and property tests for Mifo_util. *)

module Prng = Mifo_util.Prng
module Parallel = Mifo_util.Parallel
module Stats = Mifo_util.Stats
module Dist = Mifo_util.Dist
module Heap = Mifo_util.Heap
module Wheel = Mifo_util.Wheel
module Union_find = Mifo_util.Union_find
module Vec = Mifo_util.Vec
module Table = Mifo_util.Table
module Obs = Mifo_util.Obs

let check_float = Alcotest.(check (float 1e-9))

(* ---------- Prng ---------- *)

let test_prng_deterministic () =
  let a = Prng.create ~seed:123 () and b = Prng.create ~seed:123 () in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
  done

let test_prng_seed_sensitivity () =
  let a = Prng.create ~seed:1 () and b = Prng.create ~seed:2 () in
  Alcotest.(check bool) "different streams" false (Prng.bits64 a = Prng.bits64 b)

let test_prng_int_range () =
  let rng = Prng.create ~seed:7 () in
  for _ = 1 to 10_000 do
    let v = Prng.int rng 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_in_range () =
  let rng = Prng.create ~seed:8 () in
  for _ = 1 to 1_000 do
    let v = Prng.int_in rng (-5) 5 in
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_prng_int_covers () =
  let rng = Prng.create ~seed:9 () in
  let seen = Array.make 6 false in
  for _ = 1 to 1_000 do
    seen.(Prng.int rng 6) <- true
  done;
  Alcotest.(check bool) "all values hit" true (Array.for_all Fun.id seen)

let test_prng_float_range () =
  let rng = Prng.create ~seed:10 () in
  for _ = 1 to 10_000 do
    let v = Prng.float rng 3.5 in
    Alcotest.(check bool) "in [0, 3.5)" true (v >= 0. && v < 3.5)
  done

let test_prng_bad_args () =
  let rng = Prng.create ~seed:1 () in
  Alcotest.check_raises "int 0" (Invalid_argument "Prng.int: bound must be positive")
    (fun () -> ignore (Prng.int rng 0));
  Alcotest.check_raises "empty range" (Invalid_argument "Prng.int_in: empty range")
    (fun () -> ignore (Prng.int_in rng 3 2))

let test_prng_split_independent () =
  let a = Prng.create ~seed:5 () in
  let b = Prng.split a in
  Alcotest.(check bool) "streams differ" false (Prng.bits64 a = Prng.bits64 b)

let test_prng_exponential_mean () =
  let rng = Prng.create ~seed:11 () in
  let stats = Stats.create () in
  for _ = 1 to 50_000 do
    Stats.add stats (Prng.exponential rng ~mean:2.0)
  done;
  Alcotest.(check bool) "mean close to 2" true (abs_float (Stats.mean stats -. 2.0) < 0.05)

let test_prng_shuffle_permutation () =
  let rng = Prng.create ~seed:12 () in
  let a = Array.init 100 (fun i -> i) in
  Prng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 100 (fun i -> i)) sorted

let test_sample_without_replacement () =
  let rng = Prng.create ~seed:13 () in
  let s = Prng.sample_without_replacement rng 10 50 in
  Alcotest.(check int) "k elements" 10 (Array.length s);
  let tbl = Hashtbl.create 16 in
  Array.iter
    (fun v ->
      Alcotest.(check bool) "in range" true (v >= 0 && v < 50);
      Alcotest.(check bool) "distinct" false (Hashtbl.mem tbl v);
      Hashtbl.add tbl v ())
    s

(* ---------- Stats ---------- *)

let test_stats_basic () =
  let s = Stats.create () in
  List.iter (Stats.add s) [ 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. ];
  check_float "mean" 5.0 (Stats.mean s);
  Alcotest.(check bool) "variance" true (abs_float (Stats.variance s -. 4.571428571) < 1e-6);
  check_float "min" 2. (Stats.min s);
  check_float "max" 9. (Stats.max s);
  check_float "total" 40. (Stats.total s);
  Alcotest.(check int) "count" 8 (Stats.count s)

let test_stats_empty () =
  let s = Stats.create () in
  check_float "mean of empty" 0. (Stats.mean s);
  check_float "variance of empty" 0. (Stats.variance s)

let test_stats_merge () =
  let a = Stats.create () and b = Stats.create () and all = Stats.create () in
  let xs = [ 1.; 2.; 3. ] and ys = [ 10.; 20.; 30.; 40. ] in
  List.iter (Stats.add a) xs;
  List.iter (Stats.add b) ys;
  List.iter (Stats.add all) (xs @ ys);
  let m = Stats.merge a b in
  Alcotest.(check int) "count" (Stats.count all) (Stats.count m);
  Alcotest.(check bool) "mean" true (abs_float (Stats.mean all -. Stats.mean m) < 1e-9);
  Alcotest.(check bool) "variance" true
    (abs_float (Stats.variance all -. Stats.variance m) < 1e-9)

(* ---------- Dist ---------- *)

let test_cdf_basic () =
  let c = Dist.cdf_of_samples [| 1.; 2.; 3.; 4. |] in
  check_float "P(X<=0)" 0. (Dist.cdf_at c 0.);
  check_float "P(X<=2)" 0.5 (Dist.cdf_at c 2.);
  check_float "P(X<=4)" 1. (Dist.cdf_at c 4.);
  check_float "P(X>=3)" 0.5 (Dist.fraction_at_least c 3.);
  check_float "P(X>=1)" 1. (Dist.fraction_at_least c 1.);
  check_float "P(X>=5)" 0. (Dist.fraction_at_least c 5.)

let test_percentile () =
  let c = Dist.cdf_of_samples (Array.init 100 (fun i -> float_of_int (i + 1))) in
  check_float "median" 50. (Dist.percentile c 50.);
  check_float "p100" 100. (Dist.percentile c 100.);
  check_float "p1" 1. (Dist.percentile c 1.)

let test_percentile_empty () =
  let c = Dist.cdf_of_samples [||] in
  Alcotest.check_raises "empty" (Invalid_argument "Dist.percentile: empty sample")
    (fun () -> ignore (Dist.percentile c 50.))

let test_histogram () =
  let h = Dist.histogram ~bins:4 ~lo:0. ~hi:4. [| 0.5; 1.5; 1.6; 2.5; 3.5; 9. |] in
  Alcotest.(check (array int)) "counts (overflow clamped)" [| 1; 2; 1; 2 |]
    (Dist.histogram_counts h);
  let lo, hi = Dist.bin_bounds h 1 in
  check_float "bin lo" 1. lo;
  check_float "bin hi" 2. hi

let test_counts_of_ints () =
  let c = Dist.counts_of_ints ~max_value:3 [| 0; 1; 1; 2; 7; 9 |] in
  Alcotest.(check (array int)) "fold into last" [| 1; 2; 1; 2 |] c

let test_evenly_spaced () =
  let xs = Dist.evenly_spaced ~lo:0. ~hi:10. ~n:5 in
  Alcotest.(check (array (float 1e-9))) "5 points" [| 0.; 2.5; 5.; 7.5; 10. |] xs

(* ---------- Heap ---------- *)

let test_heap_sorts () =
  let h = Heap.create ~cmp:compare () in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2 ];
  Alcotest.(check (list int)) "sorted" [ 1; 2; 3; 5; 8; 9 ] (Heap.to_sorted_list h);
  Alcotest.(check int) "pop min" 1 (Heap.pop_exn h);
  Alcotest.(check int) "pop next" 2 (Heap.pop_exn h);
  Alcotest.(check int) "length" 4 (Heap.length h)

let test_heap_empty () =
  let h = Heap.create ~cmp:compare () in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "pop none" None (Heap.pop h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
      ignore (Heap.pop_exn h))

let test_heap_of_array () =
  let h = Heap.of_array ~cmp:compare [| 4; 2; 7; 1 |] in
  Alcotest.(check (list int)) "heapify" [ 1; 2; 4; 7 ] (Heap.to_sorted_list h)

let prop_heap_sorts =
  QCheck2.Test.make ~name:"heap pops in sorted order" ~count:200
    QCheck2.Gen.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare () in
      List.iter (Heap.push h) xs;
      Heap.to_sorted_list h = List.sort compare xs)

(* ---------- Wheel ---------- *)

let test_wheel_orders () =
  let w = Wheel.create () in
  (* spread over several ticks and several sub-tick offsets *)
  let times = [ 3e-6; 1e-7; 2.5e-6; 1e-7; 9e-6; 0. ] in
  List.iteri (fun i t -> Wheel.schedule w ~time:t ~seq:i i) times;
  Alcotest.(check int) "length" (List.length times) (Wheel.length w);
  let keyed = List.mapi (fun i t -> (t, i)) times in
  let expect = List.sort compare keyed in
  let got =
    List.map (fun _ -> match Wheel.pop w with Some (t, s, _) -> (t, s) | None -> (-1., -1))
      times
  in
  Alcotest.(check (list (pair (float 0.) int))) "(time, seq) order" expect got;
  Alcotest.(check bool) "drained" true (Wheel.is_empty w)

let test_wheel_fifo_ties () =
  let w = Wheel.create () in
  for i = 0 to 9 do
    Wheel.schedule w ~time:42e-6 ~seq:i i
  done;
  for i = 0 to 9 do
    match Wheel.pop w with
    | Some (_, s, p) ->
      Alcotest.(check int) "seq order on equal times" i s;
      Alcotest.(check int) "payload follows" i p
    | None -> Alcotest.fail "empty too early"
  done

let test_wheel_far_future () =
  let w = Wheel.create () in
  (* beyond-span times and +inf clamp into the top level but must still
     pop in (time, seq) order after the near-present events *)
  Wheel.schedule w ~time:Float.infinity ~seq:0 "inf";
  Wheel.schedule w ~time:1e9 ~seq:1 "far";
  Wheel.schedule w ~time:1e-6 ~seq:2 "near";
  Wheel.schedule w ~time:Float.infinity ~seq:3 "inf2";
  let got = List.init 4 (fun _ -> match Wheel.pop w with Some (_, _, p) -> p | None -> "") in
  Alcotest.(check (list string)) "outliers ordered" [ "near"; "far"; "inf"; "inf2" ] got;
  Alcotest.check_raises "nan rejected" (Invalid_argument "Wheel.schedule: bad time")
    (fun () -> Wheel.schedule w ~time:Float.nan ~seq:4 "bad")

let test_wheel_clear_reuse () =
  let w = Wheel.create () in
  for i = 0 to 99 do
    Wheel.schedule w ~time:(float_of_int (i * 37 mod 50) *. 1e-6) ~seq:i i
  done;
  for _ = 0 to 49 do ignore (Wheel.pop w) done;
  Wheel.clear w;
  Alcotest.(check int) "cleared" 0 (Wheel.length w);
  Alcotest.(check bool) "empty" true (Wheel.is_empty w);
  let st = Wheel.stats w in
  Alcotest.(check int) "stats reset" 0 (st.Wheel.cascades + st.Wheel.ready);
  (* the current tick rewinds to zero: times before the pre-clear cursor
     are valid again *)
  Wheel.schedule w ~time:1e-6 ~seq:0 111;
  Wheel.schedule w ~time:0. ~seq:1 222;
  (match Wheel.pop w with
   | Some (t, _, p) ->
     check_float "rewound to t=0" 0. t;
     Alcotest.(check int) "min first" 222 p
   | None -> Alcotest.fail "empty after reuse");
  Alcotest.(check (option int)) "then the other"
    (Some 111)
    (match Wheel.pop w with Some (_, _, p) -> Some p | None -> None)

let test_wheel_pop_before_cell () =
  let w = Wheel.create () in
  let cell = [| -1. |] in
  Alcotest.(check (option string)) "empty" None (Wheel.pop_before w ~until:1. ~cell);
  Wheel.schedule w ~time:5e-6 ~seq:0 "a";
  Wheel.schedule w ~time:9e-6 ~seq:1 "b";
  Alcotest.(check (option string)) "beyond horizon" None
    (Wheel.pop_before w ~until:1e-6 ~cell);
  check_float "cell untouched on miss" (-1.) cell.(0);
  Alcotest.(check (option string)) "within horizon" (Some "a")
    (Wheel.pop_before w ~until:6e-6 ~cell);
  check_float "popped time written" 5e-6 cell.(0);
  Alcotest.(check (option string)) "inf horizon" (Some "b")
    (Wheel.pop_before w ~until:Float.infinity ~cell);
  check_float "cell tracks" 9e-6 cell.(0);
  Alcotest.(check bool) "drained" true (Wheel.is_empty w)

let test_wheel_precedes () =
  let w = Wheel.create () in
  Alcotest.(check bool) "empty precedes" true (Wheel.precedes w ~time:1e3 ~seq:0);
  Wheel.schedule w ~time:5e-6 ~seq:7 ();
  Alcotest.(check bool) "earlier time" true (Wheel.precedes w ~time:1e-6 ~seq:99);
  Alcotest.(check bool) "same time lower seq" true (Wheel.precedes w ~time:5e-6 ~seq:3);
  Alcotest.(check bool) "same key is not strict" false (Wheel.precedes w ~time:5e-6 ~seq:7);
  Alcotest.(check bool) "later time" false (Wheel.precedes w ~time:6e-6 ~seq:0)

(* The determinism contract, adversarially: random interleavings of
   schedule and pop with duplicate times, sub-tick offsets and
   far-future outliers (including +inf) must pop in exactly the
   (time, seq)-lexicographic order of a sorted-list oracle. *)
let wheel_op_gen =
  QCheck2.Gen.(
    frequency
      [
        (6, map (fun k -> `Schedule (float_of_int k *. 1e-7)) (int_bound 400));
        (1, map (fun k -> `Schedule (float_of_int k *. 10.)) (int_bound 4));
        (1, return (`Schedule Float.infinity));
        (4, return `Pop);
      ])

let prop_wheel_matches_sorted_oracle =
  QCheck2.Test.make ~name:"wheel pops in (time, seq) order vs sorted oracle" ~count:300
    QCheck2.Gen.(list_size (int_range 1 300) wheel_op_gen)
    (fun ops ->
      let w = Wheel.create () in
      let model = ref [] (* ascending (time, seq) *) and seq = ref 0 in
      let insert t s =
        let rec go = function
          | [] -> [ (t, s) ]
          | ((t', s') :: rest) as l ->
            if t' < t || (t' = t && s' < s) then (t', s') :: go rest else (t, s) :: l
        in
        model := go !model
      in
      let agree = ref true in
      let pop_both () =
        match (Wheel.pop w, !model) with
        | None, [] -> ()
        | Some (t, s, p), (t', s') :: rest ->
          if not (Int64.bits_of_float t = Int64.bits_of_float t' && s = s' && p = s')
          then agree := false;
          model := rest
        | Some _, [] | None, _ :: _ -> agree := false
      in
      List.iter
        (function
          | `Schedule t ->
            Wheel.schedule w ~time:t ~seq:!seq !seq;
            insert t !seq;
            incr seq
          | `Pop -> pop_both ())
        ops;
      while (not (Wheel.is_empty w)) || !model <> [] do
        pop_both ();
        if not !agree then model := [] (* bail out of the drain on first divergence *)
      done;
      !agree)

(* ---------- Union_find ---------- *)

let test_union_find () =
  let uf = Union_find.create 6 in
  Alcotest.(check int) "initial sets" 6 (Union_find.count_sets uf);
  Alcotest.(check bool) "union" true (Union_find.union uf 0 1);
  Alcotest.(check bool) "redundant union" false (Union_find.union uf 1 0);
  ignore (Union_find.union uf 2 3);
  ignore (Union_find.union uf 0 3);
  Alcotest.(check bool) "same" true (Union_find.same uf 1 2);
  Alcotest.(check bool) "not same" false (Union_find.same uf 1 5);
  Alcotest.(check int) "sets" 3 (Union_find.count_sets uf)

(* ---------- Vec ---------- *)

let test_vec () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v i
  done;
  Alcotest.(check int) "length" 100 (Vec.length v);
  Alcotest.(check int) "get" 42 (Vec.get v 42);
  Vec.set v 42 (-1);
  Alcotest.(check int) "set" (-1) (Vec.get v 42);
  Alcotest.(check (option int)) "pop" (Some 99) (Vec.pop v);
  let removed = Vec.swap_remove v 0 in
  Alcotest.(check int) "swap_remove returns" 0 removed;
  Alcotest.(check int) "swap_remove moved last" 98 (Vec.get v 0);
  Alcotest.check_raises "out of bounds" (Invalid_argument "Vec: index out of bounds")
    (fun () -> ignore (Vec.get v 2000))

let test_vec_fold_iter () =
  let v = Vec.of_array [| 1; 2; 3 |] in
  Alcotest.(check int) "fold" 6 (Vec.fold_left ( + ) 0 v);
  let acc = ref [] in
  Vec.iter (fun x -> acc := x :: !acc) v;
  Alcotest.(check (list int)) "iter order" [ 3; 2; 1 ] !acc

let test_vec_ensure () =
  let v = Vec.create () in
  Vec.ensure v 3 7;
  Alcotest.(check int) "grown" 3 (Vec.length v);
  Alcotest.(check int) "filled" 7 (Vec.get v 0);
  Alcotest.(check int) "filled" 7 (Vec.get v 2);
  Vec.set v 1 (-1);
  Vec.ensure v 2 99;
  Alcotest.(check int) "no-op keeps length" 3 (Vec.length v);
  Alcotest.(check int) "no-op keeps values" (-1) (Vec.get v 1);
  Vec.ensure v 10 0;
  Alcotest.(check int) "regrown" 10 (Vec.length v);
  Alcotest.(check int) "old values kept" (-1) (Vec.get v 1);
  Alcotest.(check int) "new fill" 0 (Vec.get v 9)

(* ---------- Sort ---------- *)

let test_sort_prefix_matches_array_sort () =
  (* deterministic LCG so the test needs no seed plumbing *)
  let state = ref 12345 in
  let next () =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod 1000
  in
  for len = 0 to 40 do
    let n = len + 8 in
    let a = Array.init n (fun _ -> next ()) in
    let b = Array.copy a in
    (* a total order: value, then original index via physical position is
       not available — use plain Int.compare; duplicates are fine for
       comparing against Array.sort since int sorting is value-unique *)
    Mifo_util.Sort.sort_prefix ~cmp:Int.compare a len;
    let expect = Array.sub b 0 len in
    Array.sort Int.compare expect;
    Alcotest.(check (array int)) "sorted prefix" expect (Array.sub a 0 len);
    Alcotest.(check (array int))
      "suffix untouched"
      (Array.sub b len (n - len))
      (Array.sub a len (n - len))
  done

let test_sort_prefix_validation () =
  Alcotest.check_raises "negative len" (Invalid_argument "Sort.sort_prefix")
    (fun () -> Mifo_util.Sort.sort_prefix ~cmp:Int.compare [| 1 |] (-1));
  Alcotest.check_raises "len too large" (Invalid_argument "Sort.sort_prefix")
    (fun () -> Mifo_util.Sort.sort_prefix ~cmp:Int.compare [| 1 |] 2)

(* ---------- Table ---------- *)

let test_fmt_count () =
  Alcotest.(check string) "thousands" "44,340" (Table.fmt_count 44_340);
  Alcotest.(check string) "small" "7" (Table.fmt_count 7);
  Alcotest.(check string) "million" "1,234,567" (Table.fmt_count 1_234_567);
  Alcotest.(check string) "negative" "-1,000" (Table.fmt_count (-1000))

let test_fmt_float () =
  Alcotest.(check string) "trim" "1.5" (Table.fmt_float 1.50);
  Alcotest.(check string) "keep one" "2.0" (Table.fmt_float 2.0);
  Alcotest.(check string) "decimals" "3.142" (Table.fmt_float ~decimals:3 3.14159)

let test_fmt_percent () =
  Alcotest.(check string) "percent" "41.7%" (Table.fmt_percent 0.417)

let test_render_shape () =
  let out = Table.render ~header:[ "a"; "bb" ] ~rows:[ [ "1"; "2" ]; [ "333" ] ] in
  let lines = String.split_on_char '\n' (String.trim out) in
  Alcotest.(check int) "header + sep + 2 rows" 4 (List.length lines)

(* ---------- Obs ---------- *)

let test_obs_counters_gauges () =
  let c = Obs.counter "test.obs.counter" in
  let v0 = Obs.value c in
  Obs.incr c;
  Obs.add c 4;
  Alcotest.(check int) "incr + add" (v0 + 5) (Obs.value c);
  Alcotest.(check int) "readable by name" (v0 + 5) (Obs.counter_value "test.obs.counter");
  Alcotest.(check int) "unknown counter reads 0" 0 (Obs.counter_value "test.obs.nope");
  Alcotest.(check bool) "same name, same cell" true (Obs.counter "test.obs.counter" == c);
  let g = Obs.gauge "test.obs.gauge" in
  Alcotest.(check bool) "fresh gauge is nan" true
    (Float.is_nan (Obs.gauge_value "test.obs.gauge"));
  Obs.add_gauge g 1.5;
  Obs.add_gauge g 1.0;
  check_float "accumulates from zero" 2.5 (Obs.gauge_value "test.obs.gauge");
  Obs.set_gauge g 7.0;
  check_float "set overrides" 7.0 (Obs.gauge_value "test.obs.gauge")

let test_obs_max_gauge () =
  let g = Obs.gauge "test.obs.maxgauge" in
  Alcotest.(check bool) "fresh max gauge is nan" true
    (Float.is_nan (Obs.gauge_value "test.obs.maxgauge"));
  Obs.max_gauge g 3.0;
  check_float "first observation seeds the max" 3.0 (Obs.gauge_value "test.obs.maxgauge");
  Obs.max_gauge g 1.0;
  check_float "lower observation ignored" 3.0 (Obs.gauge_value "test.obs.maxgauge");
  Obs.max_gauge g 9.5;
  check_float "higher observation wins" 9.5 (Obs.gauge_value "test.obs.maxgauge")

let test_obs_histogram () =
  let h = Obs.histogram ~bounds:[| 1.; 2.; 4. |] "test.obs.hist" in
  List.iter (Obs.observe h) [ 0.5; 1.; 1.5; 3.; 100. ];
  Alcotest.(check int) "count" 5 (Obs.histogram_count "test.obs.hist");
  (* bucket placement visible in the snapshot: bounds are inclusive upper
     bounds plus an overflow bucket *)
  let j = Obs.Json.parse (Obs.snapshot_json ()) in
  (match Obs.Json.member "histograms" j with
   | Some (Obs.Json.Obj kvs) ->
     (match List.assoc_opt "test.obs.hist" kvs with
      | Some hj ->
        (match Obs.Json.member "counts" hj with
         | Some (Obs.Json.Arr counts) ->
           Alcotest.(check (list (float 1e-9))) "bucket placement" [ 2.; 1.; 1.; 1. ]
             (List.map (function Obs.Json.Num x -> x | _ -> Float.nan) counts)
         | _ -> Alcotest.fail "no counts array")
      | None -> Alcotest.fail "histogram missing from snapshot")
   | _ -> Alcotest.fail "no histograms object");
  Alcotest.(check bool) "non-increasing bounds rejected" true
    (match Obs.histogram ~bounds:[| 2.; 1. |] "test.obs.hist2" with
     | exception Invalid_argument _ -> true
     | _ -> false)

let test_obs_trace_ring () =
  Obs.set_trace_capacity 3;
  Alcotest.(check bool) "enabled" true (Obs.trace_enabled ());
  for i = 0 to 4 do
    Obs.event ~t:(float_of_int i) "tick" [ ("i", Obs.Int i) ]
  done;
  let evs = Obs.events () in
  Alcotest.(check int) "ring bounds retention" 3 (List.length evs);
  (match evs with
   | (seq, Some t, "tick", [ ("i", Obs.Int i) ]) :: _ ->
     Alcotest.(check int) "oldest kept is #2" 2 seq;
     check_float "time carried" 2. t;
     Alcotest.(check int) "field carried" 2 i
   | _ -> Alcotest.fail "unexpected event shape");
  let lines = String.split_on_char '\n' (String.trim (Obs.trace_jsonl ())) in
  Alcotest.(check int) "three JSONL lines" 3 (List.length lines);
  List.iteri
    (fun k line ->
      match Obs.Json.member "seq" (Obs.Json.parse line) with
      | Some (Obs.Json.Num s) ->
        Alcotest.(check int) "seq ascending" (2 + k) (int_of_float s)
      | _ -> Alcotest.fail "seq missing")
    lines;
  Obs.set_trace_capacity 0;
  Alcotest.(check bool) "disabled" false (Obs.trace_enabled ());
  Obs.event "ignored" [];
  Alcotest.(check int) "no events when disabled" 0 (List.length (Obs.events ()))

let test_obs_snapshot_parses () =
  let c = Obs.counter "test.obs.snap" in
  Obs.incr c;
  let j = Obs.Json.parse (Obs.snapshot_json ()) in
  match Obs.Json.member "counters" j with
  | Some (Obs.Json.Obj kvs) ->
    Alcotest.(check bool) "counter present with its value" true
      (match List.assoc_opt "test.obs.snap" kvs with
       | Some (Obs.Json.Num v) -> v >= 1.
       | _ -> false);
    let names = List.map fst kvs in
    Alcotest.(check (list string)) "names sorted (deterministic output)"
      (List.sort compare names) names
  | _ -> Alcotest.fail "no counters object"

let test_obs_json_roundtrip () =
  let open Obs.Json in
  let j =
    Obj
      [
        ("a", Num 1.);
        ("b", Str "x\"y\n");
        ("c", Arr [ Bool true; Null; Num 2.5 ]);
        ("d", Obj []);
      ]
  in
  Alcotest.(check bool) "round trip" true (parse (to_string j) = j);
  Alcotest.(check bool) "whitespace and escapes" true
    (parse "  { \"k\" : [ 1 , -2.5e1 , \"\\u0041\" ] }  "
     = Obj [ ("k", Arr [ Num 1.; Num (-25.); Str "A" ]) ]);
  Alcotest.(check string) "non-finite floats emit null" "null" (to_string (Num Float.nan));
  List.iter
    (fun s ->
      Alcotest.(check bool) (Printf.sprintf "rejects %S" s) true
        (match parse s with
         | exception Failure _ -> true
         | _ -> false))
    [ ""; "{"; "[1,]"; "{\"a\":}"; "tru"; "1 2"; "\"unterminated" ]

let test_obs_time_phase () =
  let r = Obs.time_phase "testphase" (fun () -> 42) in
  Alcotest.(check int) "result passed through" 42 r;
  Alcotest.(check int) "run counted" 1 (Obs.counter_value "phase.testphase.runs");
  Alcotest.(check bool) "seconds recorded" true
    (Obs.gauge_value "phase.testphase.seconds" >= 0.);
  (match Obs.time_phase "testphase" (fun () -> failwith "boom") with
   | exception Failure _ -> ()
   | _ -> Alcotest.fail "exception swallowed");
  Alcotest.(check int) "raising run still counted" 2
    (Obs.counter_value "phase.testphase.runs")

(* Trim must release memory on empty (capacity back to zero — the deep
   packet-train backlog case) and shrink to fit otherwise, all without
   touching the live prefix. *)
let test_vec_trim () =
  let v = Vec.create () in
  for i = 0 to 999 do
    Vec.push v i
  done;
  Alcotest.(check bool) "capacity >= length" true (Vec.capacity v >= 1000);
  for _ = 1 to 990 do
    ignore (Vec.pop v)
  done;
  Vec.trim v;
  Alcotest.(check int) "shrunk to fit" 10 (Vec.capacity v);
  Alcotest.(check int) "length kept" 10 (Vec.length v);
  for i = 0 to 9 do
    Alcotest.(check int) "values kept" i (Vec.get v i)
  done;
  Vec.clear v;
  Vec.trim v;
  Alcotest.(check int) "empty trim releases the buffer" 0 (Vec.capacity v);
  Vec.push v 7;
  Alcotest.(check int) "usable after release" 7 (Vec.get v 0)

(* ---------- Parallel ---------- *)

let with_pool jobs f =
  let pool = Parallel.create ~jobs () in
  Fun.protect ~finally:(fun () -> Parallel.shutdown pool) (fun () -> f pool)

let test_parallel_map_empty () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          Alcotest.(check (array int)) "empty" [||] (Parallel.parallel_map pool (fun x -> x) [||])))
    [ 1; 4 ]

let test_parallel_map_matches_serial () =
  (* sizes straddling the chunking boundaries: < jobs, = jobs, around
     4*jobs (the chunk count), and a big non-multiple *)
  List.iter
    (fun n ->
      let input = Array.init n (fun i -> i) in
      let expected = Array.map (fun x -> (x * x) + 1) input in
      with_pool 4 (fun pool ->
          let got = Parallel.parallel_map pool (fun x -> (x * x) + 1) input in
          Alcotest.(check (array int)) (Printf.sprintf "n=%d" n) expected got))
    [ 1; 2; 3; 4; 5; 15; 16; 17; 33; 1000 ]

let test_parallel_for_covers_range () =
  with_pool 3 (fun pool ->
      let n = 101 in
      let hits = Array.make n 0 in
      Parallel.parallel_for pool ~lo:0 ~hi:n (fun i -> hits.(i) <- hits.(i) + 1);
      Alcotest.(check bool) "each index exactly once" true
        (Array.for_all (fun h -> h = 1) hits);
      (* empty and reversed ranges are no-ops *)
      Parallel.parallel_for pool ~lo:5 ~hi:5 (fun _ -> Alcotest.fail "ran on empty range");
      Parallel.parallel_for pool ~lo:5 ~hi:0 (fun _ -> Alcotest.fail "ran on empty range"))

exception Boom of int

let test_parallel_exception_propagates () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          let raised =
            try
              ignore
                (Parallel.parallel_map pool
                   (fun x -> if x = 37 then raise (Boom x) else x)
                   (Array.init 100 (fun i -> i)));
              false
            with Boom 37 -> true
          in
          Alcotest.(check bool)
            (Printf.sprintf "worker exception reaches caller (jobs=%d)" jobs)
            true raised))
    [ 1; 4 ]

let test_parallel_pool_reuse () =
  (* several batches through one pool; workers must survive batches *)
  with_pool 4 (fun pool ->
      for round = 1 to 5 do
        let got = Parallel.parallel_map pool (fun x -> x + round) (Array.init 64 (fun i -> i)) in
        Alcotest.(check int) "first" round got.(0);
        Alcotest.(check int) "last" (63 + round) got.(63)
      done)

let test_fork_join_barrier () =
  List.iter
    (fun jobs ->
      with_pool jobs (fun pool ->
          let n = 17 in
          let hits = Array.make n 0 in
          Parallel.fork_join pool n (fun i -> hits.(i) <- hits.(i) + 1);
          Alcotest.(check bool)
            (Printf.sprintf "each task exactly once (jobs=%d)" jobs)
            true
            (Array.for_all (fun h -> h = 1) hits);
          (* the join is a barrier: every effect is visible at return *)
          let acc = Array.make n 0 in
          Parallel.fork_join pool n (fun i -> acc.(i) <- i * i);
          let sum = Array.fold_left ( + ) 0 acc in
          Alcotest.(check int) "all effects joined" 1496 sum;
          Parallel.fork_join pool 0 (fun _ -> Alcotest.fail "ran on n=0")))
    [ 1; 4 ];
  with_pool 2 (fun pool ->
      match Parallel.fork_join pool (-1) (fun _ -> ()) with
      | () -> Alcotest.fail "negative task count accepted"
      | exception Invalid_argument _ -> ())

let test_set_default_jobs_rejects_nonpositive () =
  List.iter
    (fun bad ->
      match Parallel.set_default_jobs bad with
      | () -> Alcotest.fail (Printf.sprintf "jobs=%d accepted" bad)
      | exception Invalid_argument msg ->
        Alcotest.(check bool) "message names the bad value" true
          (String.length msg > 0))
    [ 0; -1; -100 ]

(* ---------- intset ---------- *)

module Intset = Mifo_util.Intset

let test_intset_basic () =
  let s = Intset.create () in
  Alcotest.(check bool) "fresh set is empty" true (Intset.is_empty s);
  Alcotest.(check int) "fresh cardinal" 0 (Intset.cardinal s);
  Intset.add s 3;
  Intset.add s 3;
  Intset.add s 0;
  Intset.add s 1000;
  Alcotest.(check int) "cardinal after idempotent adds" 3 (Intset.cardinal s);
  Alcotest.(check bool) "mem 3" true (Intset.mem s 3);
  Alcotest.(check bool) "mem 0" true (Intset.mem s 0);
  Alcotest.(check bool) "mem 1000" true (Intset.mem s 1000);
  Alcotest.(check bool) "mem absent" false (Intset.mem s 4);
  Intset.remove s 3;
  Intset.remove s 3;
  Intset.remove s 77;
  Alcotest.(check bool) "removed key gone" false (Intset.mem s 3);
  Alcotest.(check int) "cardinal after removes" 2 (Intset.cardinal s);
  let total = ref 0 in
  Intset.iter (fun x -> total := !total + x) s;
  Alcotest.(check int) "iter visits exactly the live keys" 1000 !total;
  match Intset.add s (-1) with
  | () -> Alcotest.fail "negative key accepted"
  | exception Invalid_argument _ -> ()

(* Growth across several doublings, then backward-shift deletion of
   every other key: the survivors must all stay findable (no tombstone
   scheme — deletion compacts the probe chains in place). *)
let test_intset_grow_and_backshift () =
  let s = Intset.create () in
  for i = 0 to 499 do
    Intset.add s (i * 7)
  done;
  Alcotest.(check int) "500 keys" 500 (Intset.cardinal s);
  for i = 0 to 499 do
    if not (Intset.mem s (i * 7)) then Alcotest.fail "key lost while growing"
  done;
  for i = 0 to 499 do
    if i mod 2 = 0 then Intset.remove s (i * 7)
  done;
  Alcotest.(check int) "half left" 250 (Intset.cardinal s);
  for i = 0 to 499 do
    if Intset.mem s (i * 7) <> (i mod 2 = 1) then
      Alcotest.fail "backward-shift deletion corrupted a probe chain"
  done;
  Alcotest.(check bool) "still not empty" false (Intset.is_empty s)

let () =
  Alcotest.run "mifo_util"
    [
      ( "prng",
        [
          Alcotest.test_case "deterministic" `Quick test_prng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_prng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_prng_int_range;
          Alcotest.test_case "int_in range" `Quick test_prng_int_in_range;
          Alcotest.test_case "int covers all values" `Quick test_prng_int_covers;
          Alcotest.test_case "float range" `Quick test_prng_float_range;
          Alcotest.test_case "bad arguments" `Quick test_prng_bad_args;
          Alcotest.test_case "split independence" `Quick test_prng_split_independent;
          Alcotest.test_case "exponential mean" `Slow test_prng_exponential_mean;
          Alcotest.test_case "shuffle is a permutation" `Quick test_prng_shuffle_permutation;
          Alcotest.test_case "sample without replacement" `Quick test_sample_without_replacement;
        ] );
      ( "intset",
        [
          Alcotest.test_case "add/mem/remove/iter" `Quick test_intset_basic;
          Alcotest.test_case "growth + backward-shift deletion" `Quick
            test_intset_grow_and_backshift;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/variance/min/max" `Quick test_stats_basic;
          Alcotest.test_case "empty accumulator" `Quick test_stats_empty;
          Alcotest.test_case "merge" `Quick test_stats_merge;
        ] );
      ( "dist",
        [
          Alcotest.test_case "ecdf" `Quick test_cdf_basic;
          Alcotest.test_case "percentile" `Quick test_percentile;
          Alcotest.test_case "percentile of empty raises" `Quick test_percentile_empty;
          Alcotest.test_case "histogram" `Quick test_histogram;
          Alcotest.test_case "counts_of_ints" `Quick test_counts_of_ints;
          Alcotest.test_case "evenly_spaced" `Quick test_evenly_spaced;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "of_array" `Quick test_heap_of_array;
          QCheck_alcotest.to_alcotest prop_heap_sorts;
        ] );
      ( "wheel",
        [
          Alcotest.test_case "(time, seq) order" `Quick test_wheel_orders;
          Alcotest.test_case "fifo on ties" `Quick test_wheel_fifo_ties;
          Alcotest.test_case "far-future outliers and +inf" `Quick test_wheel_far_future;
          Alcotest.test_case "clear and reuse" `Quick test_wheel_clear_reuse;
          Alcotest.test_case "pop_before writes the time cell" `Quick
            test_wheel_pop_before_cell;
          Alcotest.test_case "precedes" `Quick test_wheel_precedes;
          QCheck_alcotest.to_alcotest prop_wheel_matches_sorted_oracle;
        ] );
      ("union_find", [ Alcotest.test_case "union/find/count" `Quick test_union_find ]);
      ( "vec",
        [
          Alcotest.test_case "push/get/set/pop/swap_remove" `Quick test_vec;
          Alcotest.test_case "fold/iter" `Quick test_vec_fold_iter;
          Alcotest.test_case "ensure grows with fill" `Quick test_vec_ensure;
          Alcotest.test_case "trim shrinks and releases" `Quick test_vec_trim;
        ] );
      ( "sort",
        [
          Alcotest.test_case "prefix matches Array.sort" `Quick
            test_sort_prefix_matches_array_sort;
          Alcotest.test_case "validation" `Quick test_sort_prefix_validation;
        ] );
      ( "table",
        [
          Alcotest.test_case "fmt_count" `Quick test_fmt_count;
          Alcotest.test_case "fmt_float" `Quick test_fmt_float;
          Alcotest.test_case "fmt_percent" `Quick test_fmt_percent;
          Alcotest.test_case "render shape" `Quick test_render_shape;
        ] );
      ( "obs",
        [
          Alcotest.test_case "counters and gauges" `Quick test_obs_counters_gauges;
          Alcotest.test_case "max gauge high-water mark" `Quick test_obs_max_gauge;
          Alcotest.test_case "histogram buckets" `Quick test_obs_histogram;
          Alcotest.test_case "trace ring buffer" `Quick test_obs_trace_ring;
          Alcotest.test_case "snapshot is valid sorted JSON" `Quick test_obs_snapshot_parses;
          Alcotest.test_case "json round trip + rejection" `Quick test_obs_json_roundtrip;
          Alcotest.test_case "phase timing" `Quick test_obs_time_phase;
        ] );
      ( "parallel",
        [
          Alcotest.test_case "map empty input" `Quick test_parallel_map_empty;
          Alcotest.test_case "map matches serial across chunk boundaries" `Quick
            test_parallel_map_matches_serial;
          Alcotest.test_case "for covers the range exactly once" `Quick
            test_parallel_for_covers_range;
          Alcotest.test_case "worker exception propagates" `Quick
            test_parallel_exception_propagates;
          Alcotest.test_case "pool reuse across batches" `Quick test_parallel_pool_reuse;
          Alcotest.test_case "fork_join covers all tasks and joins" `Quick
            test_fork_join_barrier;
          Alcotest.test_case "set_default_jobs rejects non-positive" `Quick
            test_set_default_jobs_rejects_nonpositive;
        ] );
    ]
